"""Tests for the benchmark harness, the reports and the command-line interface."""

import json

import pytest

from repro.bench.harness import SCALES, BenchScale, build_index_suite, query_workload
from repro.bench.measure import measure_build, measure_query_time, timed
from repro.bench.report import format_series, format_table, pivot
from repro.cli import main as cli_main
from repro.datasets.registry import load_dataset
from repro.indexes import MinimizerWSA
from repro.io.pwm import write_pwm


@pytest.fixture(scope="module")
def tiny_source():
    return load_dataset("SARS", length=800)


class TestMeasure:
    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6 and seconds >= 0.0

    def test_measure_build_records_stats(self, tiny_source):
        measurement = measure_build(
            lambda: MinimizerWSA.build(tiny_source, 8, 16), "MWSA", trace_memory=True
        )
        row = measurement.as_row()
        assert row["index"] == "MWSA"
        assert row["index_size_mb"] > 0
        assert row["construction_space_mb"] > 0
        assert row["tracemalloc_peak_mb"] > 0

    def test_measure_query_time(self, tiny_source):
        index = MinimizerWSA.build(tiny_source, 8, 16)
        patterns = query_workload(tiny_source, 8, 16, 3, seed=0)
        assert measure_query_time(index, patterns) > 0.0
        assert measure_query_time(index, []) == 0.0


class TestHarness:
    def test_scales_registered(self):
        assert {"tiny", "small", "paper"} <= set(SCALES)
        assert isinstance(SCALES["tiny"], BenchScale)

    def test_scale_accessors(self):
        scale = SCALES["tiny"]
        assert scale.default_z("EFM") in scale.zs("EFM")
        assert len(scale.dataset("RSSI")) == scale.dataset_lengths["RSSI"]

    def test_build_index_suite_shares_samples(self, tiny_source):
        measurements = build_index_suite(tiny_source, 8, 16, ("WSA", "MWSA", "MWST-SE"))
        assert set(measurements) == {"WSA", "MWSA", "MWST-SE"}
        sizes = {name: m.index_size_bytes for name, m in measurements.items()}
        assert sizes["MWSA"] < sizes["WSA"]

    def test_query_workload_lengths(self, tiny_source):
        patterns = query_workload(tiny_source, 8, 16, 4, seed=1)
        assert len(patterns) == 4
        assert all(len(pattern) == 16 for pattern in patterns)


class TestReport:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}])
        assert "a" in text and "10" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_pivot(self):
        rows = [
            {"ell": 8, "index": "WSA", "mb": 2.0},
            {"ell": 8, "index": "MWSA", "mb": 1.0},
            {"ell": 16, "index": "WSA", "mb": 2.0},
        ]
        table = pivot(rows, "ell", "index", "mb")
        assert table[0] == {"ell": 8, "WSA": 2.0, "MWSA": 1.0}
        assert table[1]["MWSA"] is None

    def test_format_series_contains_title(self):
        rows = [{"ell": 8, "index": "WSA", "mb": 2.0}]
        assert "Fig" in format_series("Fig X", rows, "ell", "index", "mb")


class TestExperiments:
    def test_table2_runs_at_micro_scale(self):
        from repro.bench.experiments import table2

        scale = BenchScale(
            name="micro",
            dataset_lengths={"SARS": 300, "EFM": 300, "HUMAN": 300, "RSSI": 200},
            ell_values=(4, 8),
            z_values={name: (2, 4) for name in ("SARS", "EFM", "HUMAN", "RSSI")},
            default_ell=8,
            pattern_count=2,
        )
        result = table2(scale)
        assert len(result.rows) == 4
        assert "Table 2" in result.text

    def test_fig06_runs_at_micro_scale(self):
        from repro.bench.experiments import fig06

        scale = BenchScale(
            name="micro",
            dataset_lengths={"SARS": 300, "EFM": 300, "HUMAN": 300, "RSSI": 200},
            ell_values=(8,),
            z_values={name: (2, 4) for name in ("SARS", "EFM", "HUMAN", "RSSI")},
            default_ell=8,
            pattern_count=2,
        )
        result = fig06(scale)
        assert result.rows
        wsa = [row for row in result.rows if row["index"] == "WSA"]
        mwsa = [row for row in result.rows if row["index"] == "MWSA"]
        assert wsa and mwsa
        assert all(row["index_size_mb"] > 0 for row in result.rows)


class TestCli:
    def test_info_named_dataset(self, capsys):
        assert cli_main(["info", "--dataset", "SARS", "--length", "400"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["length"] == 400

    def test_build_from_pwm(self, tmp_path, capsys, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        assert cli_main(["build", "--pwm", str(path), "--z", "4", "--kind", "MWSA", "--ell", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "MWSA"
        assert payload["index_size_bytes"] > 0

    def test_query_command(self, tmp_path, capsys, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        assert (
            cli_main(
                ["query", "--pwm", str(path), "--z", "4", "--kind", "MWSA", "--ell", "4", "AAAA"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["occurrences"]["AAAA"] == [0]

    def test_error_reported_cleanly(self, tmp_path, capsys, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        # Minimizer index without --ell is a user error, not a traceback.
        assert cli_main(["build", "--pwm", str(path), "--z", "4", "--kind", "MWSA"]) == 1
        assert "error" in capsys.readouterr().err

    def test_info_requires_a_source(self, capsys):
        assert cli_main(["info"]) == 1

    def test_query_batch_positional_patterns(self, tmp_path, capsys, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        assert (
            cli_main(
                ["query-batch", "--pwm", str(path), "--z", "4", "--kind", "MWSA",
                 "--ell", "4", "AAAA", "AAAA", "ABAA"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["patterns"] == 3
        assert payload["unique_patterns"] == 2
        assert payload["occurrences"]["AAAA"] == [0]
        assert payload["patterns_per_second"] > 0

    def test_query_batch_patterns_file(self, tmp_path, capsys, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        patterns_file = tmp_path / "patterns.txt"
        patterns_file.write_text("AAAA\nABAA\n\n")
        assert (
            cli_main(
                ["query-batch", "--pwm", str(path), "--z", "4", "--kind", "MWSA",
                 "--ell", "4", "--patterns-file", str(patterns_file),
                 "--no-occurrences"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["patterns"] == 2
        assert "occurrences" not in payload

    def test_query_batch_without_patterns_fails(self, tmp_path, capsys, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        assert (
            cli_main(
                ["query-batch", "--pwm", str(path), "--z", "4", "--kind", "MWSA",
                 "--ell", "4"]
            )
            == 1
        )
        assert "no patterns" in capsys.readouterr().err


class TestCliStore:
    def _write_pwm(self, tmp_path, source):
        path = tmp_path / "example.pwm"
        write_pwm(path, source)
        return path

    def test_build_saves_to_store(self, tmp_path, capsys, paper_example):
        pwm = self._write_pwm(tmp_path, paper_example)
        store = tmp_path / "example.idx"
        assert (
            cli_main(
                ["build", "--pwm", str(pwm), "--z", "4", "--kind", "MWSA",
                 "--ell", "4", "--store", str(store)]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"] == str(store)
        assert store.stat().st_size > 0

    def test_query_loads_from_store(self, tmp_path, capsys, paper_example):
        pwm = self._write_pwm(tmp_path, paper_example)
        store = tmp_path / "example.idx"
        assert (
            cli_main(
                ["build", "--pwm", str(pwm), "--z", "4", "--kind", "MWSA",
                 "--ell", "4", "--store", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["query", "--store", str(store), "AAAA"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["occurrences"]["AAAA"] == [0]
        assert payload["index"]["loaded_from_store"] is True

    def test_query_batch_loads_sharded_store(self, tmp_path, capsys, paper_example):
        pwm = self._write_pwm(tmp_path, paper_example)
        store = tmp_path / "sharded.idx"
        assert (
            cli_main(
                ["build", "--pwm", str(pwm), "--z", "4", "--kind", "MWSA",
                 "--ell", "4", "--shards", "2", "--store", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            cli_main(["query-batch", "--store", str(store), "AAAA", "ABAA"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["occurrences"]["AAAA"] == [0]
        assert payload["index"]["shards"] == 2

    def test_query_without_store_or_source_fails(self, capsys):
        assert cli_main(["query", "AAAA"]) == 1
        assert "either --pwm FILE or --dataset NAME" in capsys.readouterr().err

    def test_query_missing_store_reported_cleanly(self, tmp_path, capsys):
        assert cli_main(["query", "--store", str(tmp_path / "absent.idx"), "AAAA"]) == 1
        assert "error" in capsys.readouterr().err

    def test_store_conflicting_build_options_rejected(self, tmp_path, capsys, paper_example):
        pwm = self._write_pwm(tmp_path, paper_example)
        store = tmp_path / "example.idx"
        assert (
            cli_main(
                ["build", "--pwm", str(pwm), "--z", "4", "--kind", "MWSA",
                 "--ell", "4", "--store", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        # A stored index fixes z; silently answering at the stored threshold
        # while the user asked for another would be wrong.
        assert cli_main(["query", "--store", str(store), "--z", "16", "AAAA"]) == 1
        assert "--z" in capsys.readouterr().err
