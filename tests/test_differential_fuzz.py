"""Seeded randomized differential harness over the whole index stack.

Every scenario draws a random weighted string (skewed, uniform or degenerate
distribution mix), a random pattern mix and a random point-update sequence,
then checks that **all 7 monolithic variants, the sharded index and
store-loaded indexes answer every query mode bit-identically to the
O(n·m) brute-force oracle** — before any update, after every update batch,
and (structurally, for the minimizer family) against a from-scratch rebuild
on the mutated string.

The harness is deterministic: every random draw comes from seeds fixed in
the scenario table, so a failure reproduces exactly.  Runtime is bounded by
design (small n, few seeds) — CI runs it as the fuzz smoke step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphabet import Alphabet
from repro.core.weighted_string import WeightedString
from repro.indexes import (
    ConstructionPipeline,
    Query,
    brute_force_occurrences,
    build_index,
)
from repro.io.store import (
    load_index,
    load_sharded_store,
    save_index,
    save_sharded_store,
)

MONOLITHIC = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE")
MODES = ("exists", "count", "locate", "locate_probs", "topk")

#: (name, style, n, sigma, z, ell, seed, update_batches)
SCENARIOS = [
    ("skewed-small", "skewed", 48, 4, 4.0, 3, 101, 2),
    ("skewed-wide", "skewed", 90, 4, 4.0, 4, 202, 2),
    ("uniform", "uniform", 56, 3, 2.0, 3, 303, 2),
    ("degenerate", "degenerate", 72, 4, 5.5, 4, 404, 2),
    ("binary-skewed", "skewed", 60, 2, 3.0, 2, 505, 2),
    ("skewed-deep-z", "skewed", 50, 4, 8.0, 3, 606, 2),
]


# --------------------------------------------------------------------------- #
# random generators                                                            #
# --------------------------------------------------------------------------- #
def random_weighted_string(style: str, n: int, sigma: int, seed: int) -> WeightedString:
    """A random weighted string with the scenario's distribution style."""
    rng = np.random.default_rng(seed)
    alphabet = Alphabet("ABCDEFGH"[:sigma])
    if style == "uniform":
        matrix = rng.random((n, sigma)) + 0.05
    elif style == "skewed":
        matrix = np.full((n, sigma), 0.08)
        matrix[np.arange(n), rng.integers(0, sigma, n)] = 1.0
        certain = rng.random(n) < 0.35
        matrix[certain] = 0.0
        matrix[certain, rng.integers(0, sigma, int(certain.sum()))] = 1.0
    elif style == "degenerate":
        # Mostly certain positions with a few maximally uncertain ones.
        matrix = np.zeros((n, sigma))
        matrix[np.arange(n), rng.integers(0, sigma, n)] = 1.0
        fuzzy = rng.random(n) < 0.15
        matrix[fuzzy] = 1.0 / sigma
    else:  # pragma: no cover - scenario table is fixed
        raise ValueError(style)
    return WeightedString(matrix, alphabet, normalize=True)


def random_patterns(source: WeightedString, ell: int, seed: int, count: int = 14):
    """A pattern mix: heavy windows, sampled strings, pure noise, boundaries."""
    rng = np.random.default_rng(seed)
    n = len(source)
    heavy = source.heavy_codes()
    patterns = []
    lengths = [ell, ell + 1, 2 * ell - 1, 2 * ell]
    for index in range(count):
        m = int(lengths[index % len(lengths)])
        if m > n:
            continue
        start = int(rng.integers(0, n - m + 1))
        kind = index % 3
        if kind == 0:  # heavy window: likely hit
            patterns.append([int(code) for code in heavy[start : start + m]])
        elif kind == 1:  # a sampled realization window: plausible hit
            sampled = source.sample_string(rng)
            patterns.append([int(code) for code in sampled[start : start + m]])
        else:  # random noise: likely miss
            patterns.append([int(code) for code in rng.integers(0, source.sigma, m)])
    return patterns


def random_update_batch(source: WeightedString, seed: int, count: int):
    """Random point updates mixing re-weighting, letter flips and certainty."""
    rng = np.random.default_rng(seed)
    sigma = source.sigma
    updates = []
    for _ in range(count):
        position = int(rng.integers(0, len(source)))
        kind = int(rng.integers(3))
        if kind == 0:  # make the position certain
            row = np.zeros(sigma)
            row[int(rng.integers(sigma))] = 1.0
        elif kind == 1:  # skewed re-weight
            row = np.full(sigma, 0.05)
            row[int(rng.integers(sigma))] = 1.0
        else:  # arbitrary distribution
            row = rng.random(sigma) + 0.02
        updates.append((position, row / row.sum()))
    return updates


# --------------------------------------------------------------------------- #
# oracle + equivalence checks                                                  #
# --------------------------------------------------------------------------- #
def product_oracle(source: WeightedString, pattern, position: int) -> float:
    """Direct left-to-right float64 product — the exact reference probability."""
    probability = 1.0
    for offset, code in enumerate(pattern):
        probability *= float(source.matrix[position + offset, code])
    return probability


def oracle_answers(source: WeightedString, pattern, z: float):
    positions = brute_force_occurrences(source, pattern, z)
    probabilities = [product_oracle(source, pattern, p) for p in positions]
    ranked = sorted(zip(positions, probabilities), key=lambda pair: (-pair[1], pair[0]))
    return positions, probabilities, ranked


def assert_index_matches_oracle(index, source, patterns, z, label):
    """All five query modes of ``index`` against the brute-force oracle."""
    queries = []
    for pattern in patterns:
        for mode in MODES:
            queries.append(Query(pattern, mode=mode, k=3 if mode == "topk" else None))
    results = index.query_many(queries)
    slot = 0
    for pattern in patterns:
        positions, probabilities, ranked = oracle_answers(source, pattern, z)
        per_mode = {mode: results[slot + offset] for offset, mode in enumerate(MODES)}
        slot += len(MODES)
        context = (label, pattern)
        assert per_mode["exists"].exists == bool(positions), context
        assert per_mode["count"].count == len(positions), context
        assert per_mode["locate"].positions == positions, context
        assert per_mode["locate_probs"].positions == positions, context
        # Bit-identical float64 products, not approximate equality.
        assert per_mode["locate_probs"].probabilities == probabilities, context
        top = per_mode["topk"]
        assert list(zip(top.positions, top.probabilities)) == ranked[:3], context


def leaf_tuples(collection):
    return [
        (leaf.anchor, leaf.length, leaf.mismatches, leaf.position, leaf.source)
        for leaf in collection
    ]


# --------------------------------------------------------------------------- #
# the harness                                                                  #
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "name,style,n,sigma,z,ell,seed,batches",
    SCENARIOS,
    ids=[scenario[0] for scenario in SCENARIOS],
)
def test_differential_fuzz(tmp_path, name, style, n, sigma, z, ell, seed, batches):
    source = random_weighted_string(style, n, sigma, seed)
    pipeline = ConstructionPipeline(source, z, ell=ell)
    indexes = {kind: pipeline.build(kind) for kind in MONOLITHIC}
    indexes["SHARDED"] = build_index(
        source, z, kind="MWSA", ell=ell, shards=3, max_pattern_len=2 * ell
    )
    save_index(tmp_path / "mono.idx", indexes["MWSA-G"])
    indexes["STORE"] = load_index(tmp_path / "mono.idx")
    save_sharded_store(tmp_path / "sharded", indexes["SHARDED"])
    indexes["STORE-SHARDED"] = load_sharded_store(tmp_path / "sharded")

    patterns = random_patterns(source, ell, seed + 1)
    assert patterns, "scenario produced no patterns"
    for label, index in indexes.items():
        assert_index_matches_oracle(
            index, index.source, patterns, z, f"{name}/{label}/pre"
        )

    for batch_number in range(batches):
        updates = random_update_batch(source, seed + 10 + batch_number, count=3)
        # Updates are absolute (idempotent), so every index — including the
        # store-loaded ones with their own source copies — applies the same
        # batch and must converge to the same answers.
        for label, index in indexes.items():
            report = index.apply_updates(updates)
            assert report.generation == batch_number + 1, (name, label)
        patterns = random_patterns(source, ell, seed + 20 + batch_number)
        for label, index in indexes.items():
            assert_index_matches_oracle(
                index,
                index.source,
                patterns,
                z,
                f"{name}/{label}/batch{batch_number}",
            )
            # Store-loaded indexes mutate their own matrix copy; it must have
            # converged to the shared source bit-for-bit.
            assert np.array_equal(np.asarray(index.source.matrix), source.matrix), (
                name,
                label,
            )

    # Structural bit-identity: the incrementally repaired minimizer data
    # equals a from-scratch build over the mutated string, leaf for leaf.
    fresh = build_index(source, z, kind="MWSA", ell=ell)
    repaired = indexes["MWSA"]
    assert leaf_tuples(repaired.data.forward) == leaf_tuples(fresh.data.forward)
    assert leaf_tuples(repaired.data.backward) == leaf_tuples(fresh.data.backward)
    fresh_grid = build_index(source, z, kind="MWST-G", ell=ell)
    repaired_grid = indexes["MWST-G"]
    assert set(repaired_grid.data.pairs) == set(fresh_grid.data.pairs)
    assert np.array_equal(
        repaired_grid.data.forward.adjacent_lcps(),
        fresh_grid.data.forward.adjacent_lcps(),
    )


def test_fuzz_checkpointed_repair_at_boundaries(tmp_path, monkeypatch):
    """Checkpointed z-estimation replay around its own boundaries.

    With the snapshot cadence forced down to K=16, a 96-position string has
    checkpoints inside the update range.  Update waves are aimed exactly at
    the replay edge cases — just before / at / just after a checkpoint
    boundary, a ranged update spanning a boundary, and the string ends
    (position 0 resumes from nothing, position n-1 replays the tail) — and
    after every wave all 7 monolithic variants, the sharded index and both
    store-loaded indexes must stay oracle-exact, with the minimizer family's
    repaired leaves bit-identical to from-scratch builds on the mutated
    string.
    """
    import repro.core.estimation as estimation_module

    K = 16
    monkeypatch.setattr(estimation_module, "DEFAULT_CHECKPOINT_EVERY", K)
    n, sigma, z, ell, seed = 96, 4, 4.0, 3, 909
    source = random_weighted_string("skewed", n, sigma, seed)
    pipeline = ConstructionPipeline(source, z, ell=ell)
    indexes = {kind: pipeline.build(kind) for kind in MONOLITHIC}
    indexes["SHARDED"] = build_index(
        source, z, kind="MWSA", ell=ell, shards=3, max_pattern_len=2 * ell
    )
    save_index(tmp_path / "mono.idx", indexes["MWSA-G"])
    indexes["STORE"] = load_index(tmp_path / "mono.idx")
    save_sharded_store(tmp_path / "sharded", indexes["SHARDED"])
    indexes["STORE-SHARDED"] = load_sharded_store(tmp_path / "sharded")
    # The store round-trip must preserve the (small-K) checkpoints, or the
    # replay paths below would silently test full replay only.
    stored_estimation = indexes["STORE"].data.estimation
    assert stored_estimation is not None
    assert [cp.position for cp in stored_estimation.checkpoints] == list(
        range(K, n, K)
    )

    rng = np.random.default_rng(seed + 1)

    def random_row():
        row = rng.random(sigma) + 0.02
        return row / row.sum()

    waves = [
        ("before-boundary", [(2 * K - 1, random_row())]),
        ("at-boundary", [(2 * K, random_row())]),
        ("after-boundary", [(2 * K + 1, random_row())]),
        ("spanning-range", (3 * K - 2, [random_row() for _ in range(5)])),
        ("position-zero", [(0, random_row())]),
        ("last-position", [(n - 1, random_row())]),
    ]
    replay_modes = set()
    for wave_number, (label, updates) in enumerate(waves):
        for index_label, index in indexes.items():
            if label == "spanning-range":
                start, rows = updates
                report = index.apply_range_update(start, [row.copy() for row in rows])
            else:
                report = index.apply_updates(
                    [(position, row.copy()) for position, row in updates]
                )
            replay = report.details.get("estimation_replay")
            if replay is not None:
                replay_modes.add(replay)
        # The monolithic indexes share ``source``, so it already carries the
        # wave; the store-loaded copies applied the same absolute rows.
        patterns = random_patterns(source, ell, seed + 30 + wave_number, count=8)
        for index_label, index in indexes.items():
            assert_index_matches_oracle(
                index, index.source, patterns, z, f"checkpoint/{label}/{index_label}"
            )
            assert np.array_equal(np.asarray(index.source.matrix), source.matrix), (
                label,
                index_label,
            )
        # Leaf-level bit-identity of the repaired minimizer data against a
        # from-scratch build over the mutated string, every wave.
        for kind in ("MWSA", "MWST"):
            fresh = build_index(source, z, kind=kind, ell=ell)
            assert leaf_tuples(indexes[kind].data.forward) == leaf_tuples(
                fresh.data.forward
            ), (label, kind)
            assert leaf_tuples(indexes[kind].data.backward) == leaf_tuples(
                fresh.data.backward
            ), (label, kind)
        fresh_grid = build_index(source, z, kind="MWST-G", ell=ell)
        assert set(indexes["MWST-G"].data.pairs) == set(fresh_grid.data.pairs), label
    # The boundary waves must have exercised the checkpoint-resume path, not
    # only full replay — otherwise this test is not testing the tentpole.
    assert "checkpoint" in replay_modes, replay_modes


def test_fuzz_updates_on_store_loaded_sharded_roundtrip(tmp_path):
    """Update → refresh → reload keeps the directory store oracle-exact."""
    from repro.io.store import refresh_sharded_store

    source = random_weighted_string("skewed", 64, 4, 77)
    z, ell = 4.0, 3
    sharded = build_index(
        source, z, kind="MWSA", ell=ell, shards=4, max_pattern_len=2 * ell
    )
    save_sharded_store(tmp_path / "store", sharded)
    for batch in range(3):
        updates = random_update_batch(source, 500 + batch, count=2)
        sharded.apply_updates(updates)
        refresh_sharded_store(tmp_path / "store", sharded)
        reloaded = load_sharded_store(tmp_path / "store")
        assert reloaded.generations == sharded.generations
        patterns = random_patterns(source, ell, 600 + batch, count=8)
        assert_index_matches_oracle(
            reloaded, reloaded.source, patterns, z, f"reload{batch}"
        )
