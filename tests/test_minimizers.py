"""Tests for repro.sampling.minimizers (Definition 1, Lemma 1, Example 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sampling.minimizers import MinimizerScheme, default_k


def brute_minimizers(codes, scheme):
    """Reference implementation straight from the definition."""
    selected = set()
    for start in range(len(codes) - scheme.ell + 1):
        best_value, best_position = None, None
        for t in range(start, start + scheme.ell - scheme.k + 1):
            code = 0
            for letter in codes[t : t + scheme.k]:
                code = code * scheme.sigma + letter
            value = scheme.order_value(code)
            if best_value is None or value < best_value:
                best_value, best_position = value, t
        selected.add(best_position)
    return sorted(selected)


class TestConstruction:
    def test_paper_example2(self):
        # S = ABAABB, ell=4, k=2, lexicographic: the only selected index is 3
        # (1-based), i.e. 2 in 0-based coordinates, where AA starts.
        scheme = MinimizerScheme(ell=4, sigma=2, k=2, order="lexicographic")
        assert scheme.minimizer_positions([0, 1, 0, 0, 1, 1]) == [2]

    def test_default_k_respects_lemma1(self):
        assert default_k(1024, 4) >= 5  # log_4(1024) = 5
        assert default_k(16, 91) >= 2

    def test_default_k_capped_by_ell(self):
        assert default_k(2, 2) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            MinimizerScheme(ell=0, sigma=4)
        with pytest.raises(ReproError):
            MinimizerScheme(ell=4, sigma=0)
        with pytest.raises(ReproError):
            MinimizerScheme(ell=4, sigma=4, k=9)
        with pytest.raises(ReproError):
            MinimizerScheme(ell=4, sigma=4, order="bogus")
        with pytest.raises(ReproError):
            default_k(0, 4)

    def test_repr(self):
        assert "ell=8" in repr(MinimizerScheme(ell=8, sigma=4))


class TestSelection:
    def test_window_minimizer_short_window_rejected(self):
        scheme = MinimizerScheme(ell=4, sigma=2, k=2)
        with pytest.raises(ReproError):
            scheme.window_minimizer([0, 1])

    def test_leftmost_pattern_minimizer_matches_window(self):
        scheme = MinimizerScheme(ell=4, sigma=2, k=2, order="lexicographic")
        pattern = [1, 0, 0, 1, 1, 0]
        assert scheme.leftmost_pattern_minimizer(pattern) == scheme.window_minimizer(
            pattern[:4]
        )

    def test_string_shorter_than_window_has_no_minimizers(self):
        scheme = MinimizerScheme(ell=8, sigma=2, k=2)
        assert scheme.minimizer_positions([0, 1, 0]) == []

    @pytest.mark.parametrize("order", ["lexicographic", "random"])
    @settings(max_examples=50, deadline=None)
    @given(
        codes=st.lists(st.integers(min_value=0, max_value=2), max_size=30),
        ell=st.integers(min_value=2, max_value=8),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_matches_brute_force(self, order, codes, ell, k):
        k = min(k, ell)
        scheme = MinimizerScheme(ell=ell, sigma=3, k=k, order=order)
        assert scheme.minimizer_positions(codes) == brute_minimizers(codes, scheme)

    def test_valid_window_restriction(self):
        scheme = MinimizerScheme(ell=3, sigma=2, k=2, order="lexicographic")
        codes = [0, 1, 0, 1, 0, 1]
        everything = scheme.minimizer_positions(codes)
        nothing = scheme.minimizer_positions(codes, valid_window=[False] * 4)
        only_first = scheme.minimizer_positions(
            codes, valid_window=[True, False, False, False]
        )
        assert nothing == []
        assert set(only_first) <= set(everything)
        assert len(only_first) == 1


class TestDensity:
    def test_density_definition(self):
        scheme = MinimizerScheme(ell=4, sigma=2, k=2, order="lexicographic")
        codes = [0, 1, 0, 0, 1, 1, 0, 1]
        assert scheme.density(codes) == pytest.approx(
            len(scheme.minimizer_positions(codes)) / len(codes)
        )

    def test_density_of_empty_string(self):
        assert MinimizerScheme(ell=4, sigma=2).density([]) == 0.0

    def test_density_close_to_lemma1_bound_on_random_input(self):
        import random

        rng = random.Random(0)
        codes = [rng.randrange(4) for _ in range(4000)]
        scheme = MinimizerScheme(ell=32, sigma=4, order="random")
        # Lemma 1: expected density O(1/ell); the classic bound is 2/(ell-k+2).
        assert scheme.density(codes) <= 3.0 * scheme.expected_density_bound()
        # Every window of length ell contains a selected position, so the
        # density cannot drop much below 1/ell.
        assert scheme.density(codes) >= 0.9 / scheme.ell

    def test_adversarial_lexicographic_input(self):
        # Section 8: on abcdefg... every position is a minimizer under the
        # lexicographic order — the worst case the paper warns about.
        scheme = MinimizerScheme(ell=4, sigma=26, k=2, order="lexicographic")
        codes = list(range(26))
        density = scheme.density(codes)
        assert density > 0.5
