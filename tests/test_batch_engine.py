"""Edge cases of the vectorized batch query engine (``match_many``).

Every case asserts agreement with the per-pattern ``locate`` path — the
engine must be a pure throughput optimisation, never a semantic change.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from test_oracle_equivalence import random_source
from repro.cli import main as cli_main
from repro.errors import PatternError
from repro.indexes import (
    INDEX_CLASSES,
    BatchQueryEngine,
    HeavyMismatchVerifier,
    MinimizerWSA,
    WeightedSuffixArray,
    build_index,
    verify_against_source,
    verify_candidate_batches,
    verify_candidates_against_source,
)

MINIMIZER_KINDS = ("MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE")


@pytest.fixture(scope="module")
def source():
    return random_source(48, 3, 17)


@pytest.fixture(scope="module")
def indexes(source):
    return {
        kind: build_index(source, 4, kind=kind, ell=4) for kind in INDEX_CLASSES
    }


def patterns_for(source, count=12, lengths=(4, 5, 8, 9), seed=5):
    rng = np.random.default_rng(seed)
    patterns = []
    for _ in range(count):
        m = int(rng.choice(lengths))
        patterns.append([int(code) for code in rng.integers(0, source.sigma, size=m)])
    return patterns


class TestAgreementWithLocate:
    @pytest.mark.parametrize("kind", sorted(INDEX_CLASSES))
    def test_match_many_equals_locate_loop(self, indexes, source, kind):
        index = indexes[kind]
        patterns = patterns_for(source)
        assert index.match_many(patterns) == [
            index.locate(pattern) for pattern in patterns
        ]

    def test_text_patterns_coerced_like_locate(self, indexes):
        index = indexes["MWSA"]
        assert index.match_many(["ABAB"]) == [index.locate("ABAB")]

    def test_array_patterns_accepted(self, indexes):
        index = indexes["MWSA"]
        pattern = np.array([0, 1, 0, 1], dtype=np.int64)
        assert index.match_many([pattern]) == [index.locate(pattern)]


class TestEdgeCases:
    def test_empty_pattern_list(self, indexes):
        for index in indexes.values():
            assert index.match_many([]) == []

    def test_duplicate_patterns_answered_once(self, indexes):
        index = indexes["MWSA"]
        pattern = [0, 1, 0, 1, 2]
        engine = BatchQueryEngine(index)
        results = engine.match_many([pattern, pattern, pattern])
        assert results == [index.locate(pattern)] * 3
        assert engine.last_stats == {
            "patterns": 3,
            "unique_patterns": 1,
            "generation": 0,
        }

    def test_duplicate_results_are_independent_lists(self, indexes):
        index = indexes["MWSA"]
        pattern = [0, 1, 0, 1]
        first, second = index.match_many([pattern, pattern])
        first.append(-1)
        assert second == index.locate(pattern)

    @pytest.mark.parametrize("kind", MINIMIZER_KINDS)
    def test_pattern_shorter_than_ell_raises_like_locate(self, indexes, kind):
        index = indexes[kind]
        short = [0, 1]
        with pytest.raises(PatternError):
            index.locate(short)
        with pytest.raises(PatternError):
            index.match_many([[0, 1, 0, 1], short])

    def test_empty_pattern_raises_like_locate(self, indexes):
        for index in indexes.values():
            with pytest.raises(PatternError):
                index.locate([])
            with pytest.raises(PatternError):
                index.match_many([[0] * index.minimum_pattern_length, []])

    def test_letter_outside_alphabet_raises_like_locate(self, indexes):
        for index in indexes.values():
            bad = [0, 9, 0, 0]
            with pytest.raises(PatternError):
                index.locate(bad)
            with pytest.raises(PatternError):
                index.match_many([bad])

    def test_pattern_longer_than_text_is_empty(self, indexes, source):
        patterns = [[0] * (len(source) + 3)]
        for index in indexes.values():
            assert index.locate(patterns[0]) == []
            assert index.match_many(patterns) == [[]]

    def test_non_solid_pattern_is_empty(self):
        # One position has probability 0 for letter B everywhere relevant:
        # patterns through it can never be z-valid.
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString

        alphabet = Alphabet(["A", "B"])
        matrix = np.zeros((12, 2))
        matrix[:, 0] = 1.0  # the string is certainly AAAA...
        ws = WeightedString(matrix, alphabet)
        index = MinimizerWSA.build(ws, 4, 3)
        baseline = WeightedSuffixArray.build(ws, 4)
        non_solid = [0, 1, 0, 0]
        assert index.locate(non_solid) == []
        assert index.match_many([non_solid]) == [[]]
        assert baseline.match_many([non_solid]) == [[]]

    def test_mixed_batch_matches_per_pattern(self, indexes, source):
        index = indexes["MWSA-G"]
        patterns = patterns_for(source, count=20, seed=9)
        patterns.append([0] * (len(source) + 1))  # longer than the text
        patterns.append(patterns[0])  # duplicate
        assert index.match_many(patterns) == [
            index.locate(pattern) for pattern in patterns
        ]


class TestBatchVerifiers:
    """The batched verification APIs must agree with their scalar siblings."""

    def test_verify_candidates_against_source_matches_scalar(self, source):
        z = 4.0
        rng = np.random.default_rng(3)
        for m in (3, 5, 8):
            pattern = [int(code) for code in rng.integers(0, source.sigma, size=m)]
            positions = np.arange(-2, len(source) + 2, dtype=np.int64)
            mask = verify_candidates_against_source(source, pattern, positions, z)
            expected = [
                verify_against_source(source, pattern, int(position), z)
                for position in positions
            ]
            assert mask.tolist() == expected

    def test_verify_candidate_batches_matches_scalar(self, source):
        z = 4.0
        rng = np.random.default_rng(4)
        patterns = [
            [int(code) for code in rng.integers(0, source.sigma, size=m)]
            for m in (3, 3, 6, len(source) + 2)  # mixed lengths, one too long
        ]
        candidates = [
            np.arange(0, len(source), 3, dtype=np.int64),
            None,
            np.array([-1, 0, 5, len(source) + 5], dtype=np.int64),
            np.array([0], dtype=np.int64),
        ]
        results = verify_candidate_batches(source, z, patterns, candidates)
        for pattern, cands, got in zip(patterns, candidates, results):
            if cands is None:
                assert got == []
            else:
                assert got == [
                    int(position)
                    for position in cands
                    if verify_against_source(source, pattern, int(position), z)
                ]

    def test_heavy_mismatch_verifier_batch_matches_scalar(self, source):
        z = 4.0
        verifier = HeavyMismatchVerifier(source)
        rng = np.random.default_rng(5)
        for m in (3, 6):
            pattern = [int(code) for code in rng.integers(0, source.sigma, size=m)]
            positions = np.arange(-1, len(source) + 1, dtype=np.int64)
            logs = verifier.occurrence_log_probabilities(pattern, positions)
            mask = verifier.valid_mask(pattern, positions, z)
            for position, log_probability, valid in zip(positions, logs, mask):
                scalar = verifier.occurrence_probability(pattern, int(position))
                assert np.exp(log_probability) == pytest.approx(scalar, abs=1e-12)
                assert bool(valid) == verifier.is_valid(pattern, int(position), z)

    def test_match_many_pattern_longer_than_text_with_candidates(self):
        # Regression: a pattern longer than the text whose forward piece
        # still matches a leaf must return [] (not crash on the gather).
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString

        alphabet = Alphabet(["A", "B"])
        matrix = np.zeros((12, 2))
        matrix[:, 0] = 0.9
        matrix[:, 1] = 0.1
        ws = WeightedString(matrix, alphabet)
        index = MinimizerWSA.build(ws, 2, 10)
        pattern = [1] + [0] * 12  # m = 13 > n = 12
        assert index.locate(pattern) == []
        assert index.match_many([pattern]) == [[]]


class TestQueryBatchCli:
    def test_query_batch_cli_roundtrip(self, tmp_path, capsys):
        pattern_file = tmp_path / "patterns.txt"
        pattern_file.write_text("ACGTACGT\nTTTTCCCC\nACGTACGT\n")
        exit_code = cli_main(
            [
                "query-batch",
                "--dataset",
                "SARS",
                "--length",
                "200",
                "--z",
                "4",
                "--ell",
                "4",
                "--kind",
                "MWSA",
                "--patterns-file",
                str(pattern_file),
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["patterns"] == 3
        assert report["unique_patterns"] == 2
        assert report["patterns_per_second"] > 0
        assert set(report["occurrences"]) == {"ACGTACGT", "TTTTCCCC"}

    def test_query_batch_cli_requires_patterns(self, capsys):
        exit_code = cli_main(
            ["query-batch", "--dataset", "SARS", "--length", "120", "--z", "2"]
        )
        assert exit_code == 1
        assert "no patterns" in capsys.readouterr().err
