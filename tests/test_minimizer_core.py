"""Tests for repro.indexes.minimizer_core (leaf collections, Lemma 5 sampling)."""

import pytest

from repro.core.heavy import HeavyString, max_mismatches
from repro.errors import ConstructionError
from repro.indexes.minimizer_core import (
    FactorLeaf,
    LeafCollection,
    build_index_data_from_estimation,
    build_leaves_from_estimation,
)
from repro.sampling.minimizers import MinimizerScheme


@pytest.fixture()
def paper_data(paper_example):
    scheme = MinimizerScheme(ell=3, sigma=2, k=2, order="lexicographic")
    return build_index_data_from_estimation(paper_example, 4, 3, scheme=scheme)


class TestFactorLeaf:
    def test_mismatch_count(self):
        leaf = FactorLeaf(anchor=2, length=5, mismatches=((1, 0), (3, 1)), position=2)
        assert leaf.mismatch_count() == 2


class TestLeafCollectionSorting:
    def test_leaves_are_sorted_lexicographically(self, paper_data):
        collection = paper_data.forward
        materialised = [
            tuple(collection.leaf_codes(index)) for index in range(len(collection))
        ]
        assert materialised == sorted(materialised)

    def test_backward_leaves_are_sorted_too(self, paper_data):
        collection = paper_data.backward
        materialised = [
            tuple(collection.leaf_codes(index)) for index in range(len(collection))
        ]
        assert materialised == sorted(materialised)

    def test_raw_to_sorted_is_a_permutation(self, paper_data):
        mapping = paper_data.forward.raw_to_sorted
        assert sorted(int(value) for value in mapping) == list(range(len(mapping)))

    def test_letter_reads_through_mismatches(self, paper_example):
        heavy = HeavyString(paper_example)
        leaf = FactorLeaf(anchor=0, length=3, mismatches=((1, 1),), position=0)
        collection = LeafCollection([leaf], heavy.codes)
        assert collection.leaf_codes(0) == [0, 1, 0]

    def test_prefix_range(self, paper_data):
        collection = paper_data.forward
        for index in range(len(collection)):
            codes = collection.leaf_codes(index, limit=2)
            lo, hi = collection.prefix_range(codes)
            assert lo <= index < hi

    def test_prefix_range_of_absent_piece(self, paper_data):
        collection = paper_data.forward
        lo, hi = collection.prefix_range([1, 1, 1, 1, 1, 1, 1])
        assert lo == hi

    def test_trie_agrees_with_binary_search(self, paper_data):
        collection = paper_data.forward
        trie = collection.build_trie()
        for piece in ([0], [1], [0, 0], [0, 1], [1, 0], [1, 1], [0, 0, 0]):
            from_trie = list(range(*trie.descend(piece)))
            from_search = list(range(*collection.prefix_range(piece)))
            assert from_trie == from_search


class TestEstimationSampling:
    def test_leaf_counts_match_pairs(self, paper_example, paper_estimation):
        scheme = MinimizerScheme(ell=3, sigma=2, k=2, order="lexicographic")
        heavy = HeavyString(paper_example)
        forward, backward, pairs = build_leaves_from_estimation(
            paper_example, 4, 3, scheme, paper_estimation, heavy
        )
        assert len(forward) == len(backward) == len(pairs)
        assert len(forward) > 0

    def test_leaves_respect_lemma3(self, paper_example, paper_estimation):
        scheme = MinimizerScheme(ell=3, sigma=2, k=2)
        heavy = HeavyString(paper_example)
        forward, backward, _ = build_leaves_from_estimation(
            paper_example, 4, 3, scheme, paper_estimation, heavy
        )
        bound = max_mismatches(4)
        assert all(leaf.mismatch_count() <= bound for leaf in forward)
        assert all(leaf.mismatch_count() <= bound for leaf in backward)

    def test_forward_leaves_spell_valid_factors(self, paper_example, paper_data):
        # Every forward leaf is a solid factor of X starting at its minimizer.
        collection = paper_data.forward
        for index in range(len(collection)):
            leaf = collection.leaf(index)
            codes = collection.leaf_codes(index)
            assert paper_example.is_solid(codes, leaf.position, 4)

    def test_backward_leaves_spell_valid_factors_reversed(self, paper_example, paper_data):
        collection = paper_data.backward
        for index in range(len(collection)):
            leaf = collection.leaf(index)
            codes = list(reversed(collection.leaf_codes(index)))
            start = leaf.position - len(codes) + 1
            assert paper_example.is_solid(codes, start, 4)

    def test_fewer_leaves_for_larger_ell(self, small_genomic_string):
        small_ell = build_index_data_from_estimation(small_genomic_string, 8, 8)
        large_ell = build_index_data_from_estimation(small_genomic_string, 8, 32)
        assert len(large_ell.forward) <= len(small_ell.forward)

    def test_counters_populated(self, paper_data):
        assert paper_data.counters["forward_leaves"] == len(paper_data.forward)
        assert "estimation_entries" in paper_data.counters

    def test_invalid_ell_rejected(self, paper_example):
        with pytest.raises(ConstructionError):
            build_index_data_from_estimation(paper_example, 4, 0)

    def test_size_accounting_scales_with_tree_and_grid(self, paper_data):
        array_size = paper_data.size_bytes(as_tree=False)
        tree_size = paper_data.size_bytes(as_tree=True)
        grid_size = paper_data.size_bytes(as_tree=False, with_grid=True)
        assert array_size < tree_size
        assert array_size < grid_size


class TestQueryPlumbing:
    def test_split_pattern(self, paper_data):
        mu, forward_piece, backward_piece = paper_data.split_pattern([0, 0, 1, 1])
        assert 0 <= mu <= 2
        assert forward_piece == [0, 0, 1, 1][mu:]
        assert backward_piece == list(reversed([0, 0, 1, 1][: mu + 1]))

    def test_candidate_positions(self, paper_data):
        collection = paper_data.forward
        candidates = paper_data.candidate_positions(range(len(collection)), collection, 1)
        assert all(isinstance(value, int) for value in candidates)
