"""SA-IS differential tests: linear-time construction vs prefix doubling.

Both suffix-array constructions must be bit-identical on every input —
SA-IS is selected automatically under the compiled kernel engine, prefix
doubling on plain CPython, and a store written by one must answer exactly
like an index built by the other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.strings.suffix_array import (
    SA_METHODS,
    suffix_array,
)


def naive_suffix_array(text) -> list[int]:
    return sorted(range(len(text)), key=lambda start: tuple(text[start:]))


class TestSaisMatchesPrefixDoubling:
    @pytest.mark.parametrize("sigma", [1, 2, 4, 26, 255, 1000])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_texts(self, sigma, seed):
        rng = np.random.default_rng(1000 * sigma + seed)
        for length in (1, 2, 3, 7, 50, 300):
            text = rng.integers(0, sigma, size=length).astype(np.int64)
            doubled = suffix_array(text, method="prefix_doubling")
            sais = suffix_array(text, method="sais")
            np.testing.assert_array_equal(doubled, sais)

    def test_edge_cases(self):
        for text in ([], [5], [0, 0, 0, 0], [3, 2, 1, 0], [0, 1, 2, 3], [7] * 40):
            codes = np.asarray(text, dtype=np.int64)
            np.testing.assert_array_equal(
                suffix_array(codes, method="prefix_doubling"),
                suffix_array(codes, method="sais"),
            )

    def test_large_sparse_codes(self):
        # Rank compression must handle huge, sparse letter codes.
        rng = np.random.default_rng(9)
        text = rng.integers(0, 10**9, size=200).astype(np.int64)
        np.testing.assert_array_equal(
            suffix_array(text, method="prefix_doubling"),
            suffix_array(text, method="sais"),
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_against_naive(self, seed):
        rng = np.random.default_rng(seed)
        text = rng.integers(0, 3, size=int(rng.integers(1, 60))).astype(np.int64)
        expected = naive_suffix_array(list(text))
        for method in ("prefix_doubling", "sais"):
            np.testing.assert_array_equal(suffix_array(text, method=method), expected)

    def test_repeats_stress_lms_naming(self):
        # Highly periodic strings exercise the LMS-substring naming pass.
        for period in ([0, 1], [0, 0, 1], [1, 0, 0, 1], [2, 1, 0]):
            text = np.asarray(period * 40, dtype=np.int64)
            np.testing.assert_array_equal(
                suffix_array(text, method="prefix_doubling"),
                suffix_array(text, method="sais"),
            )


class TestMethodSelection:
    def test_auto_is_a_known_method(self):
        assert "auto" in SA_METHODS

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="method"):
            suffix_array(np.asarray([1, 2], dtype=np.int64), method="bogus")

    def test_auto_matches_both(self):
        rng = np.random.default_rng(4)
        text = rng.integers(0, 5, size=120).astype(np.int64)
        auto = suffix_array(text, method="auto")
        np.testing.assert_array_equal(auto, suffix_array(text, method="sais"))
        np.testing.assert_array_equal(auto, suffix_array(text, method="prefix_doubling"))


class TestPropertyStructureDifferential:
    def test_structures_agree_across_sa_methods(self):
        from repro.core import build_z_estimation
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString
        from repro.indexes.property_structures import PropertySuffixStructure

        rng = np.random.default_rng(13)
        base = rng.integers(0, 4, size=200)
        matrix = np.full((200, 4), 0.04)
        matrix[np.arange(200), base] = 0.88
        source = WeightedString(matrix, Alphabet("ACGT"))
        estimation = build_z_estimation(source, 4.0)
        doubled = PropertySuffixStructure(
            estimation, with_lcp=True, sa_method="prefix_doubling"
        )
        sais = PropertySuffixStructure(estimation, with_lcp=True, sa_method="sais")
        np.testing.assert_array_equal(doubled.sa, sais.sa)
        np.testing.assert_array_equal(doubled.lcp, sais.lcp)
        np.testing.assert_array_equal(doubled.rank_positions, sais.rank_positions)
        patterns = [[int(c) for c in base[start : start + 6]] for start in range(0, 180, 17)]
        for pattern in patterns:
            assert doubled.locate(pattern) == sais.locate(pattern)
