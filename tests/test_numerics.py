"""Tests for repro.core.numerics (shared threshold conventions)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.numerics import is_solid_probability, solid_count, validate_threshold
from repro.errors import InvalidThresholdError


class TestValidateThreshold:
    def test_accepts_one(self):
        assert validate_threshold(1) == 1.0

    def test_accepts_fractional_z(self):
        assert validate_threshold(5.5) == 5.5

    @pytest.mark.parametrize("bad", [0, 0.5, -1, float("inf"), float("nan")])
    def test_rejects_invalid(self, bad):
        with pytest.raises(InvalidThresholdError):
            validate_threshold(bad)


class TestSolidCount:
    def test_exact_integer_product(self):
        assert solid_count(0.5, 4) == 2

    def test_floor_behaviour(self):
        assert solid_count(0.49, 4) == 1
        assert solid_count(0.24, 4) == 0

    def test_zero_probability(self):
        assert solid_count(0.0, 16) == 0
        assert solid_count(-0.1, 16) == 0

    def test_rounding_noise_is_absorbed(self):
        # 0.1 * 3 is slightly below 0.3 in binary floating point.
        probability = 0.1 * 3
        assert solid_count(probability / 3 * 10, 3) == solid_count(1.0, 3) == 3

    def test_is_solid_iff_count_at_least_one(self):
        assert is_solid_probability(0.25, 4)
        assert not is_solid_probability(0.2499999, 4)

    @given(
        probability=st.floats(min_value=0.0, max_value=1.0),
        z=st.floats(min_value=1.0, max_value=1024.0),
    )
    def test_consistency_between_count_and_solidity(self, probability, z):
        assert is_solid_probability(probability, z) == (solid_count(probability, z) >= 1)

    @given(probability=st.floats(min_value=0.0, max_value=1.0))
    def test_count_bounded_by_z(self, probability):
        assert 0 <= solid_count(probability, 8) <= 8
