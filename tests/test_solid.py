"""Tests for repro.core.solid (solid factor enumeration oracles)."""

import itertools

import pytest

from repro.core.numerics import is_solid_probability
from repro.core.solid import (
    count_solid_windows,
    iter_solid_factors,
    iter_solid_factors_at,
    longest_solid_factor_length,
    maximal_solid_factors,
    right_maximal_solid_factors_at,
)


class TestEnumeration:
    def test_paper_example6_validity(self, paper_example):
        codes = {factor.codes for factor in iter_solid_factors_at(paper_example, 0, 4)}
        alphabet = paper_example.alphabet
        assert tuple(alphabet.encode("AAAA")) in codes       # valid, prob 0.3
        assert tuple(alphabet.encode("AABB")) not in codes   # prob 1/40 < 1/4
        assert tuple(alphabet.encode("ABAB")) not in codes   # prob 3/40 < 1/4

    def test_every_enumerated_factor_is_solid(self, paper_example):
        for factor in iter_solid_factors(paper_example, 4):
            probability = paper_example.occurrence_probability(
                list(factor.codes), factor.start
            )
            assert is_solid_probability(probability, 4)
            assert probability == pytest.approx(factor.probability)

    def test_enumeration_is_exhaustive_small(self, paper_example):
        enumerated = {
            (factor.start, factor.codes)
            for factor in iter_solid_factors(paper_example, 4, max_length=3)
        }
        expected = set()
        for m in range(1, 4):
            for pattern in itertools.product(range(2), repeat=m):
                for start in range(6 - m + 1):
                    if is_solid_probability(
                        paper_example.occurrence_probability(pattern, start), 4
                    ):
                        expected.add((start, pattern))
        assert enumerated == expected

    def test_max_length_cap(self, paper_example):
        assert all(
            len(factor) <= 2
            for factor in iter_solid_factors(paper_example, 4, max_length=2)
        )

    def test_solid_factor_metadata(self, paper_example):
        factor = next(iter_solid_factors_at(paper_example, 1, 4))
        assert factor.end == factor.start + len(factor)


class TestMaximality:
    def test_right_maximal_factors_cannot_extend(self, paper_example):
        for factor in right_maximal_solid_factors_at(paper_example, 0, 4):
            for code in range(paper_example.sigma):
                extended = list(factor.codes) + [code]
                assert not paper_example.is_solid(extended, factor.start, 4)

    def test_maximal_factors_cannot_extend_left(self, paper_example):
        for factor in maximal_solid_factors(paper_example, 4):
            if factor.start == 0:
                continue
            for code in range(paper_example.sigma):
                extended = [code] + list(factor.codes)
                assert not paper_example.is_solid(extended, factor.start - 1, 4)

    def test_maximal_factors_cover_all_solid_factors(self, paper_example):
        maximal = maximal_solid_factors(paper_example, 4)
        # every solid factor must be contained in some maximal one
        for factor in iter_solid_factors(paper_example, 4):
            assert any(
                larger.start <= factor.start
                and larger.end >= factor.end
                and larger.codes[factor.start - larger.start :][: len(factor)] == factor.codes
                for larger in maximal
            )

    def test_certain_string_has_single_maximal_factor(self, random_weighted_string_factory):
        ws = random_weighted_string_factory(8, sigma=2, uncertain_fraction=0.0, seed=1)
        maximal = maximal_solid_factors(ws, 4)
        assert len(maximal) == 1
        assert maximal[0].start == 0 and len(maximal[0]) == 8


class TestStatistics:
    def test_count_solid_windows(self, paper_example):
        assert count_solid_windows(paper_example, 1, 4) == sum(
            1
            for i in range(6)
            for code in range(2)
            if is_solid_probability(paper_example.probability(i, code), 4)
        )

    def test_longest_solid_factor_length(self, paper_example):
        longest = longest_solid_factor_length(paper_example, 4)
        assert longest == 4  # e.g. AAAA at position 0 (prob 0.3)

    def test_longest_solid_factor_of_certain_string(self, random_weighted_string_factory):
        ws = random_weighted_string_factory(10, sigma=3, uncertain_fraction=0.0, seed=2)
        assert longest_solid_factor_length(ws, 2) == 10
