"""Store reload must re-derive nothing: tries and grids load as arrays.

The class-level construction counters (``CompactedTrie.construction_count``,
``RangeTree2D.build_count``) count *from-scratch* builds only — array
rehydration (``from_arrays``) deliberately does not increment them, so a
reload that silently fell back to re-derivation fails these tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphabet import Alphabet
from repro.core.weighted_string import WeightedString
from repro.geometry.grid import RangeTree2D
from repro.indexes.registry import available_kinds, build_index
from repro.io.store import load_index, save_index
from repro.strings.trie import CompactedTrie


@pytest.fixture(scope="module")
def source():
    rng = np.random.default_rng(17)
    base = rng.integers(0, 4, size=400)
    matrix = np.full((400, 4), 0.02)
    matrix[np.arange(400), base] = 0.94
    return WeightedString(matrix, Alphabet("ACGT")), base


@pytest.mark.parametrize("kind", sorted(available_kinds()))
def test_reload_rederives_nothing(kind, source, tmp_path):
    weighted, base = source
    ell = None if kind in ("WST", "WSA") else 8
    index = build_index(weighted, 4.0, kind=kind, ell=ell)
    path = tmp_path / f"{kind}.idx"
    save_index(path, index)
    trie_before = CompactedTrie.construction_count
    grid_before = RangeTree2D.build_count
    loaded = load_index(path)
    # Loading may not construct a single trie or range tree from scratch.
    assert CompactedTrie.construction_count == trie_before
    assert RangeTree2D.build_count == grid_before
    rng = np.random.default_rng(23)
    patterns = [[int(c) for c in base[start : start + 10]] for start in range(0, 350, 29)]
    patterns += [[int(c) for c in rng.integers(0, 4, size=10)] for _ in range(10)]
    for pattern in patterns:
        assert loaded.locate(pattern) == index.locate(pattern)


def test_reload_with_forced_range_tree_grid(source, tmp_path):
    weighted, base = source
    index = build_index(
        weighted, 4.0, kind="MWST-G", ell=8, grid_brute_force_limit=0
    )
    assert index.grid.backend_name == "range_tree" or len(index.grid) == 0
    path = tmp_path / "grid.idx"
    save_index(path, index)
    grid_before = RangeTree2D.build_count
    loaded = load_index(path)
    assert RangeTree2D.build_count == grid_before
    assert loaded.grid.backend_name == index.grid.backend_name
    assert loaded.grid.brute_force_limit == 0
    for start in range(0, 350, 41):
        pattern = [int(c) for c in base[start : start + 10]]
        assert loaded.locate(pattern) == index.locate(pattern)


def test_counters_do_count_fresh_builds(source):
    weighted, _ = source
    trie_before = CompactedTrie.construction_count
    build_index(weighted, 4.0, kind="MWST", ell=8)
    assert CompactedTrie.construction_count > trie_before
