"""Tests for repro.core.weighted_string (the data model of Section 2)."""

import numpy as np
import pytest

from repro.core.alphabet import DNA, Alphabet
from repro.core.weighted_string import WeightedString
from repro.errors import WeightedStringError


class TestConstruction:
    def test_from_dicts_infers_alphabet(self, paper_example):
        assert paper_example.alphabet.letters == ("A", "B")
        assert len(paper_example) == 6

    def test_from_string_is_certain(self):
        ws = WeightedString.from_string("GATTACA", DNA)
        assert ws.delta == 0.0
        assert ws.occurrence_probability(DNA.encode("TTA"), 2) == 1.0

    def test_rows_must_sum_to_one(self):
        with pytest.raises(WeightedStringError):
            WeightedString(np.array([[0.5, 0.4]]), Alphabet("AB"))

    def test_normalize_rescales_rows(self):
        ws = WeightedString(np.array([[2.0, 2.0]]), Alphabet("AB"), normalize=True)
        assert ws.probability(0, 0) == pytest.approx(0.5)

    def test_normalize_rejects_zero_rows(self):
        with pytest.raises(WeightedStringError):
            WeightedString(np.array([[0.0, 0.0]]), Alphabet("AB"), normalize=True)

    def test_negative_probabilities_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString(np.array([[1.5, -0.5]]), Alphabet("AB"))

    def test_wrong_width_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString(np.array([[1.0, 0.0, 0.0]]), Alphabet("AB"))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString(np.array([1.0, 0.0]), Alphabet("AB"))

    def test_matrix_is_read_only(self, paper_example):
        with pytest.raises(ValueError):
            paper_example.matrix[0, 0] = 0.5

    def test_empty_string(self):
        ws = WeightedString(np.zeros((0, 4)), DNA)
        assert len(ws) == 0
        assert ws.delta == 0.0


class TestProbabilities:
    def test_paper_example1_occurrence_probability(self, paper_example):
        # P(X[3..5] = ABA) = 3/4 * 1/5 * 1/2 = 3/40 (paper Example 1, 1-based).
        pattern = paper_example.alphabet.encode("ABA")
        assert paper_example.occurrence_probability(pattern, 2) == pytest.approx(3 / 40)

    def test_occurrence_probability_out_of_range_is_zero(self, paper_example):
        pattern = paper_example.alphabet.encode("AAAA")
        assert paper_example.occurrence_probability(pattern, 4) == 0.0
        assert paper_example.occurrence_probability(pattern, -1) == 0.0

    def test_zero_probability_letter(self, paper_example):
        # B at position 0 has probability 0.
        assert paper_example.occurrence_probability([1], 0) == 0.0

    def test_is_solid_matches_threshold(self, paper_example):
        codes = paper_example.alphabet.encode("AAAA")
        assert paper_example.is_solid(codes, 0, 4)  # probability 0.3 >= 1/4
        assert not paper_example.is_solid(paper_example.alphabet.encode("ABAB"), 0, 4)

    def test_solid_count_matches_paper_example4(self, paper_example):
        # P = AB at position 1 occurs in ⌊(1/2)·4⌋ = 2 strings of the 4-estimation.
        codes = paper_example.alphabet.encode("AB")
        assert paper_example.solid_count(codes, 0, 4) == 2

    def test_occurrences_brute_force(self, paper_example):
        codes = paper_example.alphabet.encode("AAAA")
        assert paper_example.occurrences(codes, 4) == [0]

    def test_occurrences_empty_pattern(self, paper_example):
        assert paper_example.occurrences([], 4) == list(range(7))

    def test_maximal_solid_length(self, paper_example):
        codes = paper_example.alphabet.encode("AAAAAA")
        # AAAA at position 0 has probability 0.3; AAAAA has 0.15 < 1/4.
        assert paper_example.maximal_solid_length(0, codes, 4) == 4

    def test_log_probability(self, paper_example):
        codes = paper_example.alphabet.encode("AA")
        assert paper_example.log_probability(codes, 0) == pytest.approx(np.log(0.5))
        assert paper_example.log_probability([1], 0) == float("-inf")


class TestStructure:
    def test_delta_of_paper_example(self, paper_example):
        assert paper_example.delta == pytest.approx(5 / 6)

    def test_uncertain_positions(self, paper_example):
        assert list(paper_example.uncertain_positions()) == [1, 2, 3, 4, 5]

    def test_letters_at(self, paper_example):
        assert paper_example.letters_at(0) == [0]
        assert paper_example.letters_at(1) == [0, 1]

    def test_heavy_codes_breaks_ties_to_smallest(self, paper_example):
        assert list(paper_example.heavy_codes()) == [0, 0, 0, 0, 0, 1]

    def test_heavy_probabilities(self, paper_example):
        assert paper_example.heavy_probabilities()[2] == pytest.approx(0.75)

    def test_reverse(self, paper_example):
        reverse = paper_example.reverse()
        assert reverse.probability(0, 1) == pytest.approx(0.75)
        assert reverse.reverse() == paper_example

    def test_slice(self, paper_example):
        middle = paper_example.slice(1, 4)
        assert len(middle) == 3
        assert middle.probability(0, 0) == pytest.approx(0.5)

    def test_slice_validation(self, paper_example):
        with pytest.raises(WeightedStringError):
            paper_example.slice(4, 2)

    def test_getitem_slice_and_row(self, paper_example):
        assert len(paper_example[1:4]) == 3
        assert paper_example[0][0] == pytest.approx(1.0)
        with pytest.raises(WeightedStringError):
            paper_example[::2]

    def test_concat(self, paper_example):
        double = paper_example.concat(paper_example)
        assert len(double) == 12
        with pytest.raises(WeightedStringError):
            paper_example.concat(WeightedString.from_string("ACGT", DNA))

    def test_to_dicts_roundtrip(self, paper_example):
        rebuilt = WeightedString.from_dicts(
            paper_example.to_dicts(), paper_example.alphabet
        )
        assert rebuilt == paper_example

    def test_equality_and_repr(self, paper_example):
        assert paper_example == paper_example
        assert paper_example != paper_example.reverse()
        assert "length=6" in repr(paper_example)

    def test_entropy_bounds(self, paper_example):
        assert 0.0 < paper_example.entropy() <= 1.0

    def test_expected_size_bytes(self, paper_example):
        assert paper_example.expected_size_bytes() == 6 * 2 * 8

    def test_sample_string_respects_support(self, paper_example):
        rng = np.random.default_rng(0)
        sample = paper_example.sample_string(rng)
        assert len(sample) == 6
        assert sample[0] == 0  # position 0 is certainly A
        assert all(0 <= code < 2 for code in sample)
