"""Point updates: the mutation API, repair strategies and update stores."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.alphabet import Alphabet
from repro.core.heavy import HeavyString
from repro.core.weighted_string import WeightedString
from repro.errors import WeightedStringError
from repro.indexes import brute_force_occurrences, build_index
from repro.indexes.base import affected_pattern_starts
from repro.io.store import (
    load_index,
    load_sharded_store,
    refresh_sharded_store,
    save_index,
    save_sharded_store,
)

Z = 4.0
ELL = 4


def skewed_source(n=80, sigma=4, seed=5) -> WeightedString:
    rng = np.random.default_rng(seed)
    matrix = np.full((n, sigma), 0.1 / (sigma - 1))
    matrix[np.arange(n), rng.integers(0, sigma, n)] = 0.9
    certain = rng.random(n) < 0.35
    matrix[certain] = 0.0
    matrix[certain, rng.integers(0, sigma, int(certain.sum()))] = 1.0
    return WeightedString(matrix, Alphabet("ACGT"[:sigma]), normalize=True)


def heavy_patterns(source, count=25, seed=9):
    rng = np.random.default_rng(seed)
    heavy = source.heavy_codes()
    patterns = []
    for _ in range(count):
        m = int(rng.integers(ELL, 2 * ELL + 1))
        start = int(rng.integers(0, len(source) - m + 1))
        patterns.append([int(code) for code in heavy[start : start + m]])
    return patterns


class TestWeightedStringUpdates:
    def test_update_position_renormalizes_and_bumps_version(self):
        source = skewed_source(20)
        assert source.version == 0
        source.update_position(3, {"A": 2.0, "C": 2.0})
        assert source.version == 1
        assert np.array_equal(source.matrix[3], [0.5, 0.5, 0.0, 0.0])

    def test_vector_distribution_and_batch(self):
        source = skewed_source(20)
        positions = source.apply_updates([(1, [0.25, 0.25, 0.25, 0.25]), (5, {"G": 1.0}), (1, {"T": 1.0})])
        assert positions == [1, 5]
        assert source.version == 1
        assert np.array_equal(source.matrix[1], [0.0, 0.0, 0.0, 1.0])  # last wins

    def test_log_cache_patched_in_place(self):
        source = skewed_source(20)
        _ = source.log_matrix  # populate the cache
        source.update_position(4, {"A": 0.5, "T": 0.5})
        with np.errstate(divide="ignore"):
            assert np.array_equal(source.log_matrix, np.log(source.matrix))

    def test_invalid_updates_rejected_before_mutation(self):
        source = skewed_source(20)
        before = source.matrix.copy()
        with pytest.raises(WeightedStringError, match="outside string"):
            source.apply_updates([(0, {"A": 1.0}), (99, {"A": 1.0})])
        with pytest.raises(WeightedStringError, match="non-negative"):
            source.update_position(0, [1.5, -0.5, 0.0, 0.0])
        with pytest.raises(WeightedStringError, match="cannot all be zero"):
            source.update_position(0, {"A": 0.0})
        with pytest.raises(WeightedStringError, match="entries"):
            source.update_position(0, [0.5, 0.5])
        assert np.array_equal(source.matrix, before)
        assert source.version == 0

    def test_nan_and_infinite_distributions_rejected_before_mutation(self):
        # Regression: NaN compares False against everything, so a NaN row
        # used to sail through both the negativity and the zero-sum guard
        # and normalize into a NaN row (poisoning the log cache with it).
        source = skewed_source(20)
        _ = source.log_matrix  # populate the cache so we can assert it survives
        before = source.matrix.copy()
        log_before = source.log_matrix.copy()
        for bad in (
            {"A": float("nan")},
            [np.nan, 0.5, 0.25, 0.25],
            [np.inf, 0.0, 0.0, 0.0],
            {"C": float("inf")},
        ):
            with pytest.raises(WeightedStringError, match="finite"):
                source.update_position(2, bad)
        # WeightedStringError is a ValueError, so generic update-path
        # handlers (CLI, HTTP 400 mapping) catch it without special-casing.
        with pytest.raises(ValueError):
            source.update_position(2, {"A": float("nan")})
        # A batch with one bad row applies nothing at all.
        with pytest.raises(WeightedStringError, match="finite"):
            source.apply_updates([(0, {"A": 1.0}), (3, [np.nan] * 4)])
        assert np.array_equal(source.matrix, before)
        assert np.array_equal(source.log_matrix, log_before)
        assert source.version == 0

    def test_constructor_rejects_non_finite_matrix(self):
        matrix = np.full((4, 2), 0.5)
        matrix[1, 0] = np.nan
        with pytest.raises(WeightedStringError, match="finite"):
            WeightedString(matrix, Alphabet("AB"), normalize=True)

    def test_apply_range_update_matches_point_batch(self):
        ranged, pointwise = skewed_source(30), skewed_source(30)
        rows = [{"A": 0.5, "C": 0.5}, [0.1, 0.2, 0.3, 0.4], {"T": 1.0}]
        positions = ranged.apply_range_update(10, rows)
        expected = pointwise.apply_updates(list(enumerate(rows, start=10)))
        assert positions == expected == [10, 11, 12]
        assert ranged.matrix.tobytes() == pointwise.matrix.tobytes()
        assert ranged.apply_range_update(0, []) == []
        assert ranged.version == 1

    def test_matrix_stays_read_only_and_views_copy_on_write(self):
        source = skewed_source(20)
        source.update_position(0, {"C": 1.0})
        with pytest.raises(ValueError):
            source.matrix[0, 0] = 1.0
        view = WeightedString(source.matrix[2:10], source.alphabet)
        view.update_position(0, {"T": 1.0})  # must not write through the view
        assert not np.array_equal(source.matrix[2], view.matrix[0])

    def test_heavy_updated_copy_bit_identical(self):
        source = skewed_source(50)
        heavy = HeavyString(source)
        positions = source.apply_updates([(7, {"G": 0.6, "T": 0.4}), (30, {"A": 1.0})])
        patched = heavy.updated_copy(source, positions)
        fresh = HeavyString(source)
        assert np.array_equal(patched.codes, fresh.codes)
        assert patched.probabilities.tobytes() == fresh.probabilities.tobytes()
        assert patched.log_probabilities.tobytes() == fresh.log_probabilities.tobytes()
        assert patched._log_prefix.tobytes() == fresh._log_prefix.tobytes()


class TestAffectedWindow:
    def test_window_is_2m_minus_1_positions_wide(self):
        starts = affected_pattern_starts(4, [10], 100)
        assert list(starts) == [7, 8, 9, 10]

    def test_clamped_at_boundaries(self):
        assert list(affected_pattern_starts(4, [1], 100)) == [0, 1]
        assert list(affected_pattern_starts(4, [99], 100)) == [96]
        assert list(affected_pattern_starts(50, [10], 20)) == []

    def test_union_over_positions(self):
        assert list(affected_pattern_starts(3, [5, 6], 100)) == [3, 4, 5, 6]


class TestMonolithicRepairStrategies:
    @pytest.mark.parametrize("kind", ("MWSA", "MWST", "MWSA-G", "MWST-G"))
    def test_minimizer_repair_is_leaf_identical(self, kind):
        source = skewed_source()
        index = build_index(source, Z, kind=kind, ell=ELL)
        report = index.apply_updates([(11, {"T": 1.0}), (60, {"A": 0.5, "C": 0.5})])
        assert report.strategy in {"localized", "full-rebuild"}
        assert report.generation == index.generation == 1
        fresh = build_index(source, Z, kind=kind, ell=ELL)
        repaired_leaves = [
            (l.anchor, l.length, l.mismatches, l.position, l.source)
            for l in index.data.forward
        ]
        fresh_leaves = [
            (l.anchor, l.length, l.mismatches, l.position, l.source)
            for l in fresh.data.forward
        ]
        assert repaired_leaves == fresh_leaves
        for pattern in heavy_patterns(source):
            assert index.locate(pattern) == brute_force_occurrences(source, pattern, Z)
            assert index.locate_probs(pattern) == fresh.locate_probs(pattern)

    @pytest.mark.parametrize("kind", ("WST", "WSA", "MWST-SE"))
    def test_baselines_full_rebuild(self, kind):
        source = skewed_source()
        kwargs = {"ell": ELL} if kind == "MWST-SE" else {}
        index = build_index(source, Z, kind=kind, **kwargs)
        report = index.apply_updates([(25, {"G": 1.0})])
        assert report.strategy == "full-rebuild"
        for pattern in heavy_patterns(source):
            assert index.locate(pattern) == brute_force_occurrences(source, pattern, Z)

    def test_empty_update_batch_is_noop(self):
        source = skewed_source()
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        data_before = index.data
        report = index.apply_updates([])
        assert report.strategy == "noop" and report.positions == []
        assert index.data is data_before
        assert index.generation == 1

    def test_sequential_batches_accumulate(self):
        source = skewed_source()
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        index.apply_updates([(3, {"A": 1.0})])
        index.apply_updates([(40, {"C": 0.7, "G": 0.3})])
        assert index.generation == 2
        fresh = build_index(source, Z, kind="MWSA", ell=ELL)
        for pattern in heavy_patterns(source):
            assert index.locate(pattern) == fresh.locate(pattern)

    def test_duplicate_positions_last_wins_through_index(self):
        source = skewed_source()
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        report = index.apply_updates(
            [(12, {"A": 1.0}), (12, {"C": 0.5, "G": 0.5}), (12, {"T": 1.0})]
        )
        assert report.positions == [12]
        assert np.array_equal(index.source.matrix[12], [0.0, 0.0, 0.0, 1.0])
        fresh = build_index(index.source, Z, kind="MWSA", ell=ELL)
        for pattern in heavy_patterns(index.source):
            assert index.locate(pattern) == fresh.locate(pattern)

    def test_apply_range_update_repairs_like_point_batch(self):
        source_a, source_b = skewed_source(), skewed_source()
        rows = [{"A": 0.7, "C": 0.3}, {"G": 1.0}, [0.25, 0.25, 0.25, 0.25]]
        index_a = build_index(source_a, Z, kind="MWSA", ell=ELL)
        index_b = build_index(source_b, Z, kind="MWSA", ell=ELL)
        report = index_a.apply_range_update(33, rows)
        index_b.apply_updates(list(enumerate(rows, start=33)))
        assert report.as_dict()["range"] == [33, 36]
        assert report.positions == [33, 34, 35]
        for pattern in heavy_patterns(source_a):
            assert index_a.locate(pattern) == index_b.locate(pattern)


class TestShardedDirtyUpdates:
    def make(self, n=100, shards=4):
        source = skewed_source(n)
        index = build_index(
            source, Z, kind="MWSA", ell=ELL, shards=shards, max_pattern_len=2 * ELL
        )
        return source, index

    def test_interior_update_dirties_one_shard(self):
        source, index = self.make()
        shard = index.shards[2]
        interior = shard.core_end - 1  # beyond every other shard's overlap
        assert interior >= shard.start + (2 * ELL - 1)
        report = index.apply_updates([(interior, {"T": 1.0})])
        assert report.strategy == "dirty-shards"
        assert report.details["rebuilt_shards"] == [2]
        assert index.generations == [0, 0, 1, 0]

    def test_overlap_update_dirties_both_adjacent_shards(self):
        source, index = self.make()
        shard = index.shards[1]
        assert shard.end > shard.core_end, "plan must have an overlap"
        inside_overlap = shard.core_end  # first overlap position of shard 1
        report = index.apply_updates([(inside_overlap, {"G": 1.0})])
        assert report.details["rebuilt_shards"] == [1, 2]
        assert index.generations == [0, 1, 1, 0]

    def test_updates_stay_bit_identical_to_monolith(self):
        source, index = self.make()
        rng = np.random.default_rng(3)
        for batch in range(3):
            updates = [
                (int(rng.integers(len(source))), {"ACGT"[int(rng.integers(4))]: 1.0})
                for _ in range(2)
            ]
            index.apply_updates(updates)
        mono = build_index(source, Z, kind="MWSA", ell=ELL)
        for pattern in heavy_patterns(source, count=40):
            assert index.locate(pattern) == mono.locate(pattern)
            assert index.locate_probs(pattern) == mono.locate_probs(pattern)


class TestUpdateStores:
    def test_single_file_store_keeps_generation_stamps(self, tmp_path):
        source, index = TestShardedDirtyUpdates().make()
        index.apply_updates([(0, {"A": 1.0})])
        save_index(tmp_path / "sharded.idx", index)
        loaded = load_index(tmp_path / "sharded.idx")
        assert loaded.generations == index.generations

    def test_refresh_rewrites_only_dirty_shard_files(self, tmp_path):
        source, index = TestShardedDirtyUpdates().make()
        store = tmp_path / "store"
        save_sharded_store(store, index)
        before = {
            name: (store / name).stat().st_mtime_ns for name in os.listdir(store)
        }
        shard = index.shards[3]
        report = index.apply_updates([(shard.core_end - 1, {"C": 1.0})])
        outcome = refresh_sharded_store(store, index)
        assert outcome["rewritten"] == report.details["rebuilt_shards"]
        for name, mtime in before.items():
            changed = (store / name).stat().st_mtime_ns != mtime
            if name == "manifest.json":
                assert changed
            else:
                number = int(name.split("-")[1].split(".")[0])
                assert changed == (number in outcome["rewritten"]), name

    def test_reloaded_store_answers_like_live_index(self, tmp_path):
        source, index = TestShardedDirtyUpdates().make()
        store = tmp_path / "store"
        save_sharded_store(store, index)
        index.apply_updates([(37, {"G": 0.8, "T": 0.2})])
        refresh_sharded_store(store, index)
        reloaded = load_sharded_store(store)
        assert reloaded.generations == index.generations
        assert np.array_equal(np.asarray(reloaded.source.matrix), source.matrix)
        for pattern in heavy_patterns(source, count=30):
            assert reloaded.locate(pattern) == index.locate(pattern)

    def test_store_loaded_monolithic_update_stays_localized(self, tmp_path):
        # The store persists the estimation + checkpoints, so a loaded index
        # repairs in place instead of falling back to a full rebuild.
        source = skewed_source()
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        save_index(tmp_path / "mono.idx", index)
        loaded = load_index(tmp_path / "mono.idx")
        report = loaded.apply_updates([(10, {"T": 1.0})])
        assert report.strategy == "localized"
        assert report.details.get("estimation_replay") in {"checkpoint", "full"}
        fresh = build_index(
            WeightedString(np.asarray(loaded.source.matrix), source.alphabet),
            Z,
            kind="MWSA",
            ell=ELL,
        )
        for pattern in heavy_patterns(fresh.source, count=20):
            assert loaded.locate(pattern) == fresh.locate(pattern)


class TestUpdateLogAndCompact:
    def test_update_log_appends_and_reads_back(self, tmp_path):
        from repro.io.store import append_update_log, read_update_log

        store = tmp_path / "store"
        store.mkdir()
        assert read_update_log(store) == []
        append_update_log(store, {"positions": [3], "strategy": "dirty-shards"})
        append_update_log(store, {"positions": [9, 10], "strategy": "dirty-shards"})
        log = read_update_log(store)
        assert [entry["positions"] for entry in log] == [[3], [9, 10]]

    def test_corrupt_update_log_raises(self, tmp_path):
        from repro.errors import SerializationError
        from repro.io.store import UPDATE_LOG_NAME, read_update_log

        store = tmp_path / "store"
        store.mkdir()
        (store / UPDATE_LOG_NAME).write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(SerializationError):
            read_update_log(store)

    def test_compact_folds_generations_and_truncates_log(self, tmp_path):
        from repro.io.store import (
            append_update_log,
            compact_store,
            read_update_log,
        )

        source, index = TestShardedDirtyUpdates().make()
        store = tmp_path / "store"
        save_sharded_store(store, index)
        for batch in range(2):
            updates = [(int(10 + 40 * batch), {"C": 0.5, "G": 0.5})]
            report = index.apply_updates(updates)
            refresh = refresh_sharded_store(store, index, generation_names=True)
            append_update_log(
                store,
                {
                    "positions": report.positions,
                    "strategy": report.strategy,
                    "rewritten": refresh["rewritten"],
                },
            )
        assert list(store.glob("shard-*.g*.idx"))
        assert len(read_update_log(store)) == 2
        patterns = heavy_patterns(source, count=20)
        answers_before = [index.locate(pattern) for pattern in patterns]

        outcome = compact_store(store)
        assert outcome["log_entries_cleared"] == 2
        assert not list(store.glob("shard-*.g*.idx"))
        assert read_update_log(store) == []
        compacted = load_sharded_store(store)
        assert compacted.generations == [0] * len(compacted.shards)
        assert [compacted.locate(pattern) for pattern in patterns] == answers_before
        # ...and the compacted store is still updatable + refreshable.
        compacted.apply_updates([(5, {"A": 1.0})])
        refresh_sharded_store(store, compacted)
        assert load_sharded_store(store).generations == compacted.generations

    def test_compact_on_pristine_store_is_idempotent(self, tmp_path):
        from repro.io.store import compact_store

        source, index = TestShardedDirtyUpdates().make()
        store = tmp_path / "store"
        save_sharded_store(store, index)
        contents = {
            name: (store / name).read_bytes()
            for name in os.listdir(store)
            if name.endswith(".idx")
        }
        outcome = compact_store(store)
        assert outcome["removed"] == [] and outcome["log_entries_cleared"] == 0
        for name, payload in contents.items():
            assert (store / name).read_bytes() == payload, name

    def test_compact_rejects_single_file_store(self, tmp_path):
        from repro.errors import SerializationError
        from repro.io.store import compact_store

        source = skewed_source()
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        save_index(tmp_path / "mono.idx", index)
        with pytest.raises(SerializationError):
            compact_store(tmp_path / "mono.idx")


class TestRangedWireUpdates:
    def test_parse_updates_expands_ranges(self):
        from repro.service.protocol import parse_updates

        pairs = parse_updates(
            [
                {"start": 3, "rows": [{"A": 0.5, "C": 0.5}, {"G": 1.0}]},
                {"position": 10, "distribution": {"T": 1.0}},
                [11, {"A": 1.0}],
            ]
        )
        assert [position for position, _ in pairs] == [3, 4, 10, 11]

    def test_parse_updates_rejects_malformed_ranges(self):
        from repro.errors import ReproError
        from repro.service.protocol import parse_updates

        for payload in (
            [{"start": 3}],
            [{"start": 3, "rows": []}],
            [{"start": 3, "rows": "AC"}],
            [{"start": "x", "rows": [{"A": 1.0}]}],
            [{"start": 3, "rows": [{"A": 1.0}], "extra": 1}],
        ):
            with pytest.raises(ReproError):
                parse_updates(payload)


class TestConstructionParametersSurviveRepair:
    def test_full_rebuild_keeps_custom_scheme(self, tmp_path):
        from repro.sampling.minimizers import MinimizerScheme

        source = skewed_source()
        scheme = MinimizerScheme(ELL, source.sigma, 2, "lexicographic")
        index = build_index(source, Z, kind="MWSA", ell=ELL, scheme=scheme)
        save_index(tmp_path / "custom.idx", index)
        loaded = load_index(tmp_path / "custom.idx")
        report = loaded.apply_updates([(10, {"T": 1.0})])
        # Store-loaded indexes now repair localized; either way the custom
        # scheme must survive the update.
        assert report.strategy in {"localized", "full-rebuild"}
        assert (loaded.data.scheme.k, loaded.data.scheme.order) == (2, "lexicographic")
        for pattern in heavy_patterns(loaded.source, count=15):
            assert loaded.locate(pattern) == brute_force_occurrences(
                loaded.source, pattern, Z
            )

    def test_store_loaded_sharded_rebuild_keeps_scheme(self, tmp_path):
        from repro.sampling.minimizers import MinimizerScheme

        source = skewed_source(n=100)
        scheme = MinimizerScheme(ELL, source.sigma, 2, "lexicographic")
        index = build_index(
            source, Z, kind="MWSA", ell=ELL, shards=3, max_pattern_len=2 * ELL,
            scheme=scheme,
        )
        save_sharded_store(tmp_path / "store", index)
        loaded = load_sharded_store(tmp_path / "store")
        report = loaded.apply_updates([(10, {"T": 1.0})])
        assert report.strategy == "dirty-shards" and report.details["rebuilt_shards"]
        for shard_index in loaded.shard_indexes:
            assert shard_index.data.scheme.order == "lexicographic"
            assert shard_index.data.scheme.k == 2


class TestReviewRegressions:
    def test_service_update_accepts_a_generator(self):
        from repro.service import QueryService

        source = skewed_source()
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        service = QueryService(index)
        before = source.matrix[9].copy()
        response = service.update((u for u in [(9, {"T": 1.0})]))
        assert response["positions"] == [9]
        assert response["strategy"] != "noop"
        assert not np.array_equal(source.matrix[9], before)
        assert np.array_equal(source.matrix[9], [0.0, 0.0, 0.0, 1.0])

    def test_refresh_rejects_mismatched_parameters(self, tmp_path):
        from repro.errors import SerializationError

        source, index = TestShardedDirtyUpdates().make()
        store = tmp_path / "store"
        save_sharded_store(store, index)
        other_z = build_index(
            source, 16.0, kind="MWSA", ell=ELL, shards=4, max_pattern_len=2 * ELL
        )
        assert [(s.start, s.core_end, s.end) for s in other_z.shards] == [
            (s.start, s.core_end, s.end) for s in index.shards
        ], "precondition: same plan, different z"
        with pytest.raises(SerializationError, match="z="):
            refresh_sharded_store(store, other_z)
