"""Micro-scale runs of the per-figure experiment functions.

These exercise the full benchmark code paths (dataset loading, shared
builds, sweeps, series rendering) at a very small scale and check the
paper's qualitative claims on the resulting rows.
"""

import pytest

from repro.bench.experiments import fig08, fig12, fig13, fig14
from repro.bench.harness import BenchScale


@pytest.fixture(scope="module")
def micro_scale():
    return BenchScale(
        name="micro",
        dataset_lengths={"SARS": 300, "EFM": 300, "HUMAN": 300, "RSSI": 150},
        ell_values=(8,),
        z_values={name: (2, 4) for name in ("SARS", "EFM", "HUMAN", "RSSI")},
        default_ell=8,
        pattern_count=2,
        rssi_sigma_values=(16, 91),
        rssi_length_factors=(1, 2),
    )


def _by_index(rows, dataset=None):
    grouped = {}
    for row in rows:
        if dataset is not None and row["dataset"] != dataset:
            continue
        grouped.setdefault(row["index"], []).append(row)
    return grouped


class TestConstructionSpaceExperiments:
    def test_fig08_baseline_dominates_minimizer_constructions(self, micro_scale):
        result = fig08(micro_scale)
        grouped = _by_index(result.rows, dataset="EFM")
        assert min(row["construction_space_mb"] for row in grouped["WST"]) > max(
            row["construction_space_mb"] for row in grouped["MWSA"]
        )
        assert "construction space" in result.text

    def test_fig13_space_efficient_construction_is_smallest(self, micro_scale):
        result = fig13(micro_scale)
        grouped = _by_index(result.rows, dataset="EFM")
        largest_se = max(row["construction_space_mb"] for row in grouped["MWST-SE"])
        smallest_wst = min(row["construction_space_mb"] for row in grouped["WST"])
        assert largest_se < smallest_wst


class TestConstructionTimeExperiments:
    def test_fig12_reports_both_sweeps(self, micro_scale):
        result = fig12(micro_scale)
        assert {row["z"] for row in result.rows} >= {2, 4}
        assert all(row["construction_seconds"] >= 0.0 for row in result.rows)
        assert "vs ell" in result.text and "vs z" in result.text


class TestRSSIExperiments:
    def test_fig14_covers_all_four_sweeps(self, micro_scale):
        result = fig14(micro_scale)
        sweeps = {row["sweep"] for row in result.rows}
        assert sweeps == {"ell", "z", "sigma", "n"}
        kinds = {row["index"] for row in result.rows}
        assert kinds == {"WSA", "MWST-SE"}

    def test_fig14_length_sweep_scales_linearly(self, micro_scale):
        result = fig14(micro_scale)
        wsa_by_n = {
            row["n"]: row["construction_space_mb"]
            for row in result.rows
            if row["sweep"] == "n" and row["index"] == "WSA"
        }
        sizes = [wsa_by_n[n] for n in sorted(wsa_by_n)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]
