"""Tests for repro.indexes.space, .base and .verification."""

import pytest

from repro.core.heavy import HeavyString
from repro.errors import PatternError
from repro.indexes.base import brute_force_occurrences, coerce_pattern
from repro.indexes.space import (
    DEFAULT_SPACE_MODEL,
    ConstructionTracker,
    IndexStats,
    SpaceModel,
)
from repro.indexes.verification import HeavyMismatchVerifier, verify_against_source


class TestSpaceModel:
    def test_default_costs(self):
        assert DEFAULT_SPACE_MODEL.word == 8
        assert DEFAULT_SPACE_MODEL.code == 1

    def test_helpers(self):
        model = SpaceModel()
        assert model.words(3) == 24
        assert model.codes(10) == 10
        assert model.probabilities(2) == 16
        assert model.tree_nodes(2) == 64

    def test_custom_model(self):
        model = SpaceModel(word=4, code=2, tree_node=16)
        assert model.words(2) == 8
        assert model.codes(2) == 4
        assert model.tree_nodes(1) == 16


class TestConstructionTracker:
    def test_peak_tracking(self):
        tracker = ConstructionTracker()
        tracker.allocate(100)
        tracker.allocate(50)
        tracker.release(100)
        tracker.allocate(20)
        assert tracker.current_bytes == 70
        assert tracker.peak_bytes == 150

    def test_initially_zero(self):
        tracker = ConstructionTracker()
        assert tracker.current_bytes == 0
        assert tracker.peak_bytes == 0


class TestIndexStats:
    def test_unit_conversions(self):
        stats = IndexStats(name="X", index_size_bytes=2_000_000, construction_space_bytes=4_000_000)
        assert stats.megabytes() == pytest.approx(2.0)
        assert stats.construction_megabytes() == pytest.approx(4.0)

    def test_as_dict_includes_counters(self):
        stats = IndexStats(name="X", counters={"leaves": 7})
        row = stats.as_dict()
        assert row["name"] == "X"
        assert row["leaves"] == 7


class TestPatternCoercion:
    def test_text_pattern(self, paper_example):
        assert coerce_pattern("ABA", paper_example) == [0, 1, 0]

    def test_code_pattern_passthrough(self, paper_example):
        assert coerce_pattern([1, 0], paper_example) == [1, 0]

    def test_out_of_range_code_rejected(self, paper_example):
        with pytest.raises(PatternError):
            coerce_pattern([5], paper_example)

    def test_brute_force_occurrences(self, paper_example):
        assert brute_force_occurrences(paper_example, "AAAA", 4) == [0]


class TestVerification:
    def test_verify_against_source(self, paper_example):
        codes = paper_example.alphabet.encode("AAAA")
        assert verify_against_source(paper_example, codes, 0, 4)
        assert not verify_against_source(paper_example, codes, 2, 4)

    def test_heavy_mismatch_verifier_matches_direct(self, paper_example):
        verifier = HeavyMismatchVerifier(paper_example)
        for text in ("AAAA", "ABAA", "BABA", "AABB"):
            codes = paper_example.alphabet.encode(text)
            for position in range(len(paper_example) - len(codes) + 1):
                direct = paper_example.occurrence_probability(codes, position)
                assert verifier.occurrence_probability(codes, position) == pytest.approx(
                    direct, abs=1e-12
                )

    def test_heavy_mismatch_verifier_validity(self, paper_example):
        verifier = HeavyMismatchVerifier(paper_example)
        codes = paper_example.alphabet.encode("AAAA")
        assert verifier.is_valid(codes, 0, 4)
        assert not verifier.is_valid(codes, 2, 4)

    def test_verifier_out_of_range(self, paper_example):
        verifier = HeavyMismatchVerifier(paper_example)
        assert verifier.occurrence_probability([0], 99) == 0.0

    def test_verifier_zero_probability_letter(self, paper_example):
        verifier = HeavyMismatchVerifier(paper_example)
        assert verifier.occurrence_probability([1], 0) == 0.0

    def test_verifier_accepts_precomputed_heavy(self, paper_example):
        heavy = HeavyString(paper_example)
        verifier = HeavyMismatchVerifier(paper_example, heavy)
        assert verifier.heavy is heavy
