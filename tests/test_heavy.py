"""Tests for repro.core.heavy (heavy strings, Lemma 3, prefix products)."""

import math

import pytest

from repro.core.heavy import HeavyString, apply_mismatches, max_mismatches
from repro.core.solid import iter_solid_factors


class TestHeavyString:
    def test_paper_example5_heavy_string(self, paper_example):
        # The paper breaks ties differently (ABAAAB); our deterministic
        # tie-break towards the smallest code yields AAAAB with A at ties.
        heavy = HeavyString(paper_example)
        assert heavy.text() == "AAAAAB"

    def test_codes_and_letters(self, paper_example):
        heavy = HeavyString(paper_example)
        assert heavy.code(5) == 1
        assert heavy.letter(5) == "B"
        assert len(heavy) == 6

    def test_probabilities(self, paper_example):
        heavy = HeavyString(paper_example)
        assert heavy.probabilities[2] == pytest.approx(0.75)

    def test_range_product_matches_direct_product(self, paper_example):
        heavy = HeavyString(paper_example)
        direct = 0.5 * 0.75 * 0.8
        assert heavy.range_product(1, 4) == pytest.approx(direct)
        assert heavy.log_range_product(1, 4) == pytest.approx(math.log(direct))

    def test_empty_range_product_is_one(self, paper_example):
        heavy = HeavyString(paper_example)
        assert heavy.range_product(3, 3) == pytest.approx(1.0)

    def test_solid_heavy_run(self, paper_example):
        heavy = HeavyString(paper_example)
        # From position 0: 1 * .5 * .75 * .8 = 0.3 >= 1/4 but adding .5 drops below.
        assert heavy.solid_heavy_run(0, 4) == 4

    def test_solid_heavy_run_with_z_one(self, paper_example):
        heavy = HeavyString(paper_example)
        assert heavy.solid_heavy_run(0, 1) == 1  # only the certain first position

    def test_factor_codes_applies_mismatches(self, paper_example):
        heavy = HeavyString(paper_example)
        codes = heavy.factor_codes(0, 4, [(1, 1)])
        assert codes == [0, 1, 0, 0]

    def test_apply_mismatches_helper(self, paper_example):
        heavy = HeavyString(paper_example)
        assert apply_mismatches(heavy, 2, 5, [(3, 1)]) == [0, 1, 0]

    def test_mismatches_outside_range_ignored(self, paper_example):
        heavy = HeavyString(paper_example)
        assert heavy.factor_codes(0, 2, [(5, 1)]) == [0, 0]


class TestLemma3:
    @pytest.mark.parametrize("z,expected", [(1, 0), (2, 1), (4, 2), (8, 3), (1024, 10)])
    def test_max_mismatches(self, z, expected):
        assert max_mismatches(z) == expected

    def test_lemma3_holds_for_all_solid_factors(self, paper_example):
        heavy = HeavyString(paper_example)
        for factor in iter_solid_factors(paper_example, 4):
            assert heavy.verify_lemma3(
                paper_example, list(factor.codes), factor.start, 4
            )

    def test_lemma3_holds_on_random_strings(self, random_weighted_string_factory):
        ws = random_weighted_string_factory(12, sigma=3, uncertain_fraction=0.8, seed=5)
        heavy = HeavyString(ws)
        for factor in iter_solid_factors(ws, 8):
            assert heavy.verify_lemma3(ws, list(factor.codes), factor.start, 8)
