"""Tests for repro.io (FASTA, SNP tables, PWM, JSON serialisation)."""

import numpy as np
import pytest

from repro.core import build_z_estimation
from repro.datasets.genomes import sars_like
from repro.errors import SerializationError
from repro.io import (
    load_estimation,
    load_weighted_string,
    read_fasta,
    read_pwm,
    read_snp_table,
    save_estimation,
    save_weighted_string,
    weighted_string_from_reference_and_snps,
    write_fasta,
    write_pwm,
    write_snp_table,
)


class TestFasta:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, {"chr1": "ACGTACGT", "chr2": "GGGG"}, width=4)
        assert read_fasta(path) == {"chr1": "ACGTACGT", "chr2": "GGGG"}

    def test_lowercase_is_uppercased(self, tmp_path):
        path = tmp_path / "ref.fa"
        path.write_text(">x\nacgt\n")
        assert read_fasta(path) == {"x": "ACGT"}

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "broken.fa"
        path.write_text("ACGT\n")
        with pytest.raises(SerializationError):
            read_fasta(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.fa"
        path.write_text("")
        with pytest.raises(SerializationError):
            read_fasta(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            read_fasta(tmp_path / "absent.fa")

    def test_invalid_width_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_fasta(tmp_path / "x.fa", {"a": "ACGT"}, width=0)


class TestSnpTables:
    def test_roundtrip(self, tmp_path):
        dataset = sars_like(400, seed=9)
        path = tmp_path / "snps.tsv"
        write_snp_table(path, [snp.as_row() for snp in dataset.snps])
        rows = read_snp_table(path)
        assert len(rows) == len(dataset.snps)
        assert rows[0]["reference"] in "ACGT"

    def test_malformed_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("10\tA\n")
        with pytest.raises(SerializationError):
            read_snp_table(path)
        path.write_text("x\tA\tC\t0.5\n")
        with pytest.raises(SerializationError):
            read_snp_table(path)

    def test_reference_plus_snps_to_weighted_string(self):
        reference = "ACGTAC"
        snps = [{"position": 3, "reference": "G", "alternative": "T", "frequency": 0.25}]
        ws = weighted_string_from_reference_and_snps(reference, snps)
        code_g = ws.alphabet.code("G")
        code_t = ws.alphabet.code("T")
        assert ws.probability(2, code_g) == pytest.approx(0.75)
        assert ws.probability(2, code_t) == pytest.approx(0.25)
        assert ws.delta == pytest.approx(1 / 6)

    def test_snp_consistency_checks(self):
        with pytest.raises(SerializationError):
            weighted_string_from_reference_and_snps(
                "AC", [{"position": 9, "reference": "A", "alternative": "C", "frequency": 0.1}]
            )
        with pytest.raises(SerializationError):
            weighted_string_from_reference_and_snps(
                "AC", [{"position": 1, "reference": "C", "alternative": "A", "frequency": 0.1}]
            )
        with pytest.raises(SerializationError):
            weighted_string_from_reference_and_snps(
                "AC", [{"position": 1, "reference": "A", "alternative": "C", "frequency": 1.5}]
            )


class TestPwm:
    def test_roundtrip(self, tmp_path, paper_example):
        path = tmp_path / "example.pwm"
        write_pwm(path, paper_example)
        loaded = read_pwm(path)
        assert loaded.alphabet == paper_example.alphabet
        assert np.allclose(loaded.matrix, paper_example.matrix, atol=1e-6)

    def test_inconsistent_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.pwm"
        path.write_text("A 0.5 0.5\nB 0.5\n")
        with pytest.raises(SerializationError):
            read_pwm(path)

    def test_empty_pwm_rejected(self, tmp_path):
        path = tmp_path / "empty.pwm"
        path.write_text("# nothing\n")
        with pytest.raises(SerializationError):
            read_pwm(path)

    def test_malformed_values_rejected(self, tmp_path):
        path = tmp_path / "nan.pwm"
        path.write_text("A x y\n")
        with pytest.raises(SerializationError):
            read_pwm(path)


class TestJsonSerialisation:
    def test_weighted_string_roundtrip(self, tmp_path, paper_example):
        path = tmp_path / "ws.json"
        save_weighted_string(path, paper_example)
        assert load_weighted_string(path) == paper_example

    def test_estimation_roundtrip(self, tmp_path, paper_example):
        estimation = build_z_estimation(paper_example, 4)
        path = tmp_path / "est.json"
        save_estimation(path, estimation)
        loaded = load_estimation(path)
        assert np.array_equal(loaded.strings, estimation.strings)
        assert np.array_equal(loaded.ends, estimation.ends)
        assert loaded.z == estimation.z

    def test_format_mismatch_rejected(self, tmp_path, paper_example):
        path = tmp_path / "ws.json"
        save_weighted_string(path, paper_example)
        with pytest.raises(SerializationError):
            load_estimation(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_weighted_string(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_weighted_string(tmp_path / "absent.json")

    def test_probabilities_roundtrip_at_full_float64_precision(self, tmp_path):
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString

        # Awkward irrational-ish rows whose sums are 1 only up to float error;
        # the reload must reproduce every entry bit for bit (no renormalising).
        rng = np.random.default_rng(17)
        matrix = rng.random((40, 3))
        matrix /= matrix.sum(axis=1, keepdims=True)
        original = WeightedString(matrix, Alphabet("ABC"))
        path = tmp_path / "precise.json"
        save_weighted_string(path, original)
        loaded = load_weighted_string(path)
        assert np.array_equal(loaded.matrix, original.matrix)

    def test_unsupported_version_rejected_with_clear_error(self, tmp_path, paper_example):
        import json

        path = tmp_path / "future.json"
        save_weighted_string(path, paper_example)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="unsupported version 99"):
            load_weighted_string(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SerializationError, match="JSON object"):
            load_weighted_string(path)
