"""Sharded index architecture: planning, equivalence, parallel builds.

The oracle-equivalence cases assert the ISSUE-2 acceptance criterion:
``ShardedIndex`` answers are identical to the monolithic index and to brute
force across shard counts {1, 2, 7}, including patterns that straddle shard
boundaries.  The wall-clock speedup demonstration runs only on machines with
at least 4 cores (CI runners); single-core boxes still exercise the
multiprocessing path for correctness.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.errors import ConstructionError, PatternError
from repro.indexes import (
    ConstructionPipeline,
    ShardedIndex,
    brute_force_occurrences,
    build_index,
    plan_shards,
)

SHARD_COUNTS = (1, 2, 7)


def _source(factory, n=60, sigma=3, seed=5):
    return factory(n, sigma=sigma, uncertain_fraction=0.5, seed=seed)


class TestPlanShards:
    def test_cores_partition_the_input(self):
        shards = plan_shards(100, 7, overlap=9)
        assert shards[0].start == 0
        assert shards[-1].core_end == 100
        for left, right in zip(shards, shards[1:]):
            assert left.core_end == right.start
        for shard in shards:
            assert shard.end == min(shard.core_end + 9, 100)

    def test_more_shards_than_positions(self):
        shards = plan_shards(3, 10, overlap=2)
        assert len(shards) == 3
        assert [shard.start for shard in shards] == [0, 1, 2]

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConstructionError):
            plan_shards(10, 0, overlap=1)
        with pytest.raises(ConstructionError):
            plan_shards(10, 2, overlap=-1)


class TestShardedEquivalence:
    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    @pytest.mark.parametrize("kind", ("MWSA", "WSA"))
    def test_matches_monolithic_and_brute_force(
        self, random_weighted_string_factory, shard_count, kind
    ):
        source = _source(random_weighted_string_factory)
        z, ell = 4.0, 4
        mono = build_index(source, z, kind=kind, ell=ell)
        sharded = build_index(
            source, z, kind=kind, ell=ell, shards=shard_count, max_pattern_len=2 * ell
        )
        rng = np.random.default_rng(shard_count)
        patterns = [
            [int(code) for code in rng.integers(0, source.sigma, size=m)]
            for m in (ell, ell + 2, 2 * ell)
            for _ in range(4)
        ]
        # Boundary-straddling patterns: factors of the heavy string centred on
        # every shard boundary, so each one spans two cores.
        heavy = source.heavy_codes()
        for shard in sharded.shards[1:]:
            boundary = shard.start
            start = max(0, boundary - ell + 1)
            stop = min(len(source), boundary + ell - 1)
            if stop - start >= ell:
                patterns.append([int(code) for code in heavy[start:stop]])
        for pattern in patterns:
            expected = brute_force_occurrences(source, pattern, z)
            assert mono.locate(pattern) == expected
            assert sharded.locate(pattern) == expected, (
                f"{kind} x{shard_count} disagrees on {pattern}"
            )
        assert sharded.match_many(patterns) == mono.match_many(patterns)

        # Update sweep: a point update inside each overlap region must dirty
        # both adjacent shards, and the repaired sharded index must stay
        # bit-identical to a monolithic rebuild on the mutated string.
        updates = []
        for number, shard in enumerate(sharded.shards[:-1]):
            if shard.core_end < shard.end:  # inside the overlap
                updates.append((number, shard.core_end))
        for number, position in updates:
            report = sharded.apply_updates(
                [(position, {source.alphabet.letter(0): 1.0})]
            )
            assert report.strategy == "dirty-shards"
            # The first overlap position of shard ``number`` is also the
            # start of shard ``number + 1``'s core: both must rebuild.
            expected_dirty = [number, number + 1]
            assert report.details["rebuilt_shards"] == expected_dirty, (
                f"overlap update at {position} must dirty shards {expected_dirty}"
            )
        if updates:
            mono_after = build_index(source, z, kind=kind, ell=ell)
            for pattern in patterns:
                expected = brute_force_occurrences(source, pattern, z)
                assert sharded.locate(pattern) == expected
                assert mono_after.locate(pattern) == expected
            assert sharded.match_many(patterns) == mono_after.match_many(patterns)

    def test_single_shard_equals_monolithic_sizes(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory)
        mono = build_index(source, 4, kind="MWSA", ell=4)
        sharded = build_index(source, 4, kind="MWSA", ell=4, shards=1)
        assert sharded.stats.index_size_bytes == mono.stats.index_size_bytes
        assert sharded.stats.counters["shards"] == 1

    def test_grid_variant_shards(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory, n=50)
        z, ell = 4.0, 4
        mono = build_index(source, z, kind="MWSA-G", ell=ell)
        sharded = build_index(source, z, kind="MWSA-G", ell=ell, shards=3)
        rng = np.random.default_rng(9)
        patterns = [
            [int(code) for code in rng.integers(0, source.sigma, size=m)]
            for m in (ell, 2 * ell - 1)
            for _ in range(5)
        ]
        assert sharded.match_many(patterns) == mono.match_many(patterns)


class TestShardedValidation:
    def test_pattern_longer_than_overlap_rejected(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory)
        sharded = build_index(
            source, 4, kind="MWSA", ell=4, shards=2, max_pattern_len=6
        )
        assert sharded.maximum_pattern_length == 6
        too_long = [0] * 7
        with pytest.raises(PatternError):
            sharded.locate(too_long)
        with pytest.raises(PatternError):
            sharded.match_many([[0] * 6, too_long])

    def test_needs_max_pattern_len_or_ell(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory)
        with pytest.raises(ConstructionError):
            ShardedIndex.build(source, 4, kind="WSA", shard_count=2)
        index = ShardedIndex.build(
            source, 4, kind="WSA", shard_count=2, max_pattern_len=5
        )
        assert index.minimum_pattern_length == 1
        pattern = [0, 1]
        assert index.locate(pattern) == brute_force_occurrences(source, pattern, 4)

    def test_unknown_inner_kind_rejected(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory)
        with pytest.raises(ConstructionError):
            build_index(source, 4, kind="NOPE", ell=4, shards=2)


class TestParallelBuild:
    def test_parallel_build_matches_serial(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory, n=80)
        serial = build_index(source, 4, kind="MWSA", ell=4, shards=4)
        parallel = build_index(source, 4, kind="MWSA", ell=4, shards=4, workers=2)
        rng = np.random.default_rng(3)
        patterns = [
            [int(code) for code in rng.integers(0, source.sigma, size=5)]
            for _ in range(10)
        ]
        assert parallel.match_many(patterns) == serial.match_many(patterns)
        assert parallel.stats.counters["workers"] == 2

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="the wall-clock speedup demonstration needs at least 4 cores",
    )
    def test_parallel_build_beats_single_shard_wall_clock(self):
        from repro.datasets.synthetic import sparse_uncertainty_string

        source = sparse_uncertainty_string(20_000, 4, delta=0.1, seed=11)
        z, ell = 16.0, 32
        started = time.perf_counter()
        single = build_index(source, z, kind="MWSA", ell=ell, shards=1)
        single_seconds = time.perf_counter() - started
        started = time.perf_counter()
        sharded = build_index(
            source, z, kind="MWSA", ell=ell, shards=8, workers=4
        )
        sharded_seconds = time.perf_counter() - started
        assert sharded_seconds < single_seconds, (
            f"parallel sharded build took {sharded_seconds:.2f}s, "
            f"single-shard build {single_seconds:.2f}s"
        )
        rng = np.random.default_rng(1)
        patterns = [
            [int(code) for code in rng.integers(0, source.sigma, size=ell)]
            for _ in range(20)
        ]
        assert sharded.match_many(patterns) == single.match_many(patterns)


class TestConstructionPipeline:
    def test_stages_are_shared(self, random_weighted_string_factory):
        source = _source(random_weighted_string_factory)
        pipeline = ConstructionPipeline(source, 4, ell=4)
        first = pipeline.estimation()
        assert pipeline.estimation() is first
        data = pipeline.index_data()
        assert pipeline.index_data() is data
        wsa = pipeline.build("WSA")
        mwsa = pipeline.build("MWSA")
        mwst_g = pipeline.build("MWST-G")
        assert mwsa.data is data and mwst_g.data is data
        pattern = [0, 1, 0, 1]
        expected = brute_force_occurrences(source, pattern, 4)
        for index in (wsa, mwsa, mwst_g):
            assert index.locate(pattern) == expected

    def test_pipeline_requires_ell_for_minimizer_stages(
        self, random_weighted_string_factory
    ):
        source = _source(random_weighted_string_factory)
        pipeline = ConstructionPipeline(source, 4)
        assert pipeline.build("WSA").locate([0]) is not None
        with pytest.raises(ConstructionError):
            pipeline.index_data()
