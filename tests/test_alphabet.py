"""Tests for repro.core.alphabet."""

import pytest

from repro.core.alphabet import DNA, PROTEIN, Alphabet
from repro.errors import AlphabetError


class TestConstruction:
    def test_size(self):
        assert Alphabet("ACGT").size == 4

    def test_len(self):
        assert len(Alphabet("AB")) == 2

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet([])

    def test_duplicate_letters_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("AAB")

    def test_letters_preserve_order(self):
        assert Alphabet("TGCA").letters == ("T", "G", "C", "A")

    def test_integer_alphabet(self):
        alphabet = Alphabet.integer(5)
        assert alphabet.size == 5
        assert alphabet.letter(3) == "3"

    def test_integer_alphabet_rejects_nonpositive(self):
        with pytest.raises(AlphabetError):
            Alphabet.integer(0)

    def test_from_text_sorts_letters(self):
        assert Alphabet.from_text("banana").letters == ("a", "b", "n")


class TestConversions:
    def test_code_roundtrip(self):
        dna = Alphabet("ACGT")
        for code, letter in enumerate("ACGT"):
            assert dna.code(letter) == code
            assert dna.letter(code) == letter

    def test_encode_decode_roundtrip(self):
        dna = Alphabet("ACGT")
        text = "GATTACA"
        assert dna.decode(dna.encode(text)) == text

    def test_unknown_letter_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("ACGT").code("N")

    def test_out_of_range_code_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("ACGT").letter(4)

    def test_negative_code_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("AB").letter(-1)

    def test_contains(self):
        assert "C" in Alphabet("ACGT")
        assert "N" not in Alphabet("ACGT")

    def test_iteration(self):
        assert list(Alphabet("AB")) == ["A", "B"]


class TestEqualityAndPresets:
    def test_equality(self):
        assert Alphabet("ACGT") == Alphabet("ACGT")
        assert Alphabet("ACGT") != Alphabet("TGCA")

    def test_hashable(self):
        assert len({Alphabet("AB"), Alphabet("AB"), Alphabet("BA")}) == 2

    def test_dna_preset(self):
        assert DNA.size == 4
        assert DNA.encode("ACGT") == [0, 1, 2, 3]

    def test_protein_preset(self):
        assert PROTEIN.size == 20

    def test_repr_mentions_size(self):
        assert "size=4" in repr(DNA)
