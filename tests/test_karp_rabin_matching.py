"""Tests for repro.strings.karp_rabin and repro.strings.matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.properties import PropertyArray
from repro.strings.karp_rabin import KarpRabinHasher, mix64, mix64_array
from repro.strings.matching import (
    find_occurrences,
    find_property_occurrences,
    is_occurrence,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_inputs_differ(self):
        assert mix64(1) != mix64(2)

    def test_range(self):
        assert 0 <= mix64(0) < 2**64

    def test_vectorised_matches_scalar(self):
        values = np.arange(50, dtype=np.uint64)
        vector = mix64_array(values)
        assert all(int(vector[i]) == mix64(i) for i in range(50))


class TestKarpRabin:
    def test_equal_substrings_have_equal_fingerprints(self):
        codes = [0, 1, 2, 0, 1, 2, 0, 1]
        hasher = KarpRabinHasher(codes)
        assert hasher.fingerprint(0, 3) == hasher.fingerprint(3, 6)
        assert hasher.equal((0, 3), (3, 6))

    def test_different_lengths_never_equal(self):
        hasher = KarpRabinHasher([0, 0, 0])
        assert not hasher.equal((0, 1), (0, 2))

    def test_unequal_substrings_differ_whp(self):
        codes = list(range(20))
        hasher = KarpRabinHasher(codes)
        assert hasher.fingerprint(0, 5) != hasher.fingerprint(5, 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            KarpRabinHasher([1, 2]).fingerprint(0, 5)

    def test_len(self):
        assert len(KarpRabinHasher([1, 2, 3])) == 3


class TestMatching:
    def test_is_occurrence(self):
        assert is_occurrence([0, 1, 2], [1, 2], 1)
        assert not is_occurrence([0, 1, 2], [1, 2], 2)
        assert not is_occurrence([0, 1, 2], [9], 0)

    @settings(max_examples=40, deadline=None)
    @given(
        text=st.lists(st.integers(min_value=0, max_value=2), max_size=30),
        pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=3),
    )
    def test_find_occurrences_consistency(self, text, pattern):
        for position in find_occurrences(text, pattern):
            assert text[position : position + len(pattern)] == pattern

    def test_empty_pattern_occurs_everywhere(self):
        assert find_occurrences([1, 2], []) == [0, 1, 2]

    def test_property_filtering(self):
        text = [0, 0, 0, 0]
        prop = PropertyArray.from_lengths([2, 2, 2, 1])
        assert find_property_occurrences(text, [0, 0], prop) == [0, 1, 2]
        assert find_property_occurrences(text, [0, 0, 0], prop) == []
