"""Construction-parity sweep: the array-backed fast path vs the reference path.

The perf work rebuilt the construction hot path as a structure-of-arrays
pipeline (vectorised z-estimation materialisation, radix-sorted leaf arrays,
vectorised mismatch extraction) while keeping the per-position / per-leaf
reference implementation selectable.  These tests pin the contract that the
fast path is **bit-identical**:

* z-estimations agree entry-for-entry, including the edge cases (z = 1,
  single-letter alphabets, fully-certain strings, tied-probability rows,
  rows at the ``_weight_floor`` rounding boundary);
* every estimation-built index variant is leaf-identical (anchors, lengths,
  mismatch lists, labels, adjacent LCPs, grid pairing);
* all 7 variants + the sharded build + store round-trips answer every query
  mode identically through either path.
"""

from __future__ import annotations

import numpy as np
import pytest
from test_differential_fuzz import (
    MODES,
    leaf_tuples,
    random_patterns,
    random_weighted_string,
)

from repro.core.alphabet import Alphabet
from repro.core.estimation import ESTIMATION_METHODS, build_z_estimation
from repro.core.weighted_string import WeightedString
from repro.errors import ConstructionError
from repro.indexes import ConstructionPipeline, Query, build_index
from repro.io.store import load_index, save_index

#: The estimation-built kinds whose leaf data must be row-identical.
ESTIMATION_MINIMIZER_KINDS = ("MWST", "MWSA", "MWST-G", "MWSA-G")
ALL_MONOLITHIC = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE")

#: (name, style, n, sigma, z, ell, seed) — a bounded, deterministic sweep.
SWEEP = [
    ("skewed", "skewed", 72, 4, 4.0, 3, 1301),
    ("uniform", "uniform", 60, 3, 2.0, 3, 1402),
    ("degenerate", "degenerate", 84, 4, 5.5, 4, 1503),
    ("deep-z", "skewed", 64, 4, 8.0, 4, 1604),
]


def assert_estimations_identical(source: WeightedString, z: float) -> None:
    reference = build_z_estimation(source, z, method="reference")
    vectorized = build_z_estimation(source, z, method="vectorized")
    assert np.array_equal(reference.strings, vectorized.strings)
    assert np.array_equal(reference.ends, vectorized.ends)
    assert reference.z == vectorized.z


# --------------------------------------------------------------------------- #
# estimation edge cases through the vectorised builder                         #
# --------------------------------------------------------------------------- #
class TestEstimationEdgeCases:
    def test_z_equal_one(self):
        source = random_weighted_string("uniform", 40, 3, 7)
        assert_estimations_identical(source, 1.0)
        estimation = build_z_estimation(source, 1.0)
        assert estimation.width == 1
        # The single string of a 1-estimation is the heavy string.
        assert np.array_equal(estimation.strings[0], source.heavy_codes())

    def test_single_letter_alphabet(self):
        source = WeightedString(
            np.ones((25, 1), dtype=np.float64), Alphabet("A")
        )
        assert_estimations_identical(source, 3.0)
        estimation = build_z_estimation(source, 3.0)
        assert np.all(estimation.strings == 0)
        assert np.all(estimation.ends == len(source) - 1)

    def test_fully_certain_string(self):
        source = WeightedString.from_string("ABBABAABBA")
        assert_estimations_identical(source, 6.0)
        estimation = build_z_estimation(source, 6.0)
        # Every token spells the input with a full-span property.
        for j in range(estimation.width):
            assert np.array_equal(estimation.strings[j], source.heavy_codes())
            assert np.all(estimation.ends[j] == len(source) - 1)

    def test_tied_probability_rows(self):
        rows = [{"A": 0.5, "B": 0.5}] * 6 + [{"A": 1.0}] + [
            {"A": 0.25, "B": 0.25, "C": 0.25, "D": 0.25}
        ] * 4
        source = WeightedString.from_dicts(rows, Alphabet("ABCD"))
        for z in (2.0, 4.0, 8.0):
            assert_estimations_identical(source, z)

    def test_weight_floor_boundary_rows(self):
        # z·P lands exactly on integers (0.5/0.25 quotas at z = 4) and just
        # below them (1/3 rows at z = 3): the rounding-tolerance floor must
        # behave identically through both builders.
        rows = [
            {"A": 0.5, "B": 0.5},
            {"A": 0.5, "B": 0.25, "C": 0.25},
            {"A": 1.0 / 3.0, "B": 1.0 / 3.0, "C": 1.0 / 3.0},
            {"A": 0.75, "B": 0.25},
            {"A": 1.0},
            {"A": 2.0 / 3.0, "B": 1.0 / 3.0},
            {"A": 0.125, "B": 0.875},
        ] * 3
        source = WeightedString.from_dicts(rows, Alphabet("ABC"), normalize=True)
        for z in (2.0, 3.0, 4.0, 8.0):
            assert_estimations_identical(source, z)

    def test_edge_sources_against_count_oracle(self):
        # The defining Count property must hold through the fast path on the
        # edge sources too (spot checks on short patterns).
        source = WeightedString.from_dicts(
            [{"A": 0.5, "B": 0.5}] * 5 + [{"B": 1.0}] * 3,
            Alphabet("AB"),
        )
        z = 4.0
        estimation = build_z_estimation(source, z, method="vectorized")
        rng = np.random.default_rng(11)
        for _ in range(25):
            m = int(rng.integers(1, 4))
            start = int(rng.integers(0, len(source) - m + 1))
            pattern = [int(code) for code in rng.integers(0, 2, m)]
            expected = int(
                np.floor(
                    z * source.occurrence_probability(pattern, start) + 1e-9
                )
            )
            assert estimation.count(pattern, start) == expected

    def test_methods_registry(self):
        assert set(ESTIMATION_METHODS) == {"vectorized", "reference"}
        source = WeightedString.from_string("AB")
        with pytest.raises(ConstructionError):
            build_z_estimation(source, 2.0, method="nope")


# --------------------------------------------------------------------------- #
# the sweep: leaf identity + query identity across every variant               #
# --------------------------------------------------------------------------- #
def assert_same_answers(old_index, new_index, patterns, label):
    queries = [
        Query(pattern, mode=mode, k=3 if mode == "topk" else None)
        for pattern in patterns
        for mode in MODES
    ]
    old_results = old_index.query_many(queries)
    new_results = new_index.query_many(queries)
    for old, new in zip(old_results, new_results):
        assert old.as_dict() == new.as_dict(), label


@pytest.mark.parametrize(
    "name,style,n,sigma,z,ell,seed", SWEEP, ids=[entry[0] for entry in SWEEP]
)
def test_construction_parity_sweep(tmp_path, name, style, n, sigma, z, ell, seed):
    source = random_weighted_string(style, n, sigma, seed)
    assert_estimations_identical(source, z)
    patterns = random_patterns(source, ell, seed + 1)
    assert patterns

    old_pipeline = ConstructionPipeline(source, z, ell=ell, method="reference")
    new_pipeline = ConstructionPipeline(source, z, ell=ell, method="vectorized")
    for kind in ALL_MONOLITHIC:
        old_index = old_pipeline.build(kind)
        new_index = new_pipeline.build(kind)
        assert_same_answers(old_index, new_index, patterns, (name, kind))
        if kind in ESTIMATION_MINIMIZER_KINDS:
            old_data, new_data = old_index.data, new_index.data
            assert leaf_tuples(old_data.forward) == leaf_tuples(new_data.forward)
            assert leaf_tuples(old_data.backward) == leaf_tuples(new_data.backward)
            assert np.array_equal(
                old_data.forward.adjacent_lcps(), new_data.forward.adjacent_lcps()
            )
            assert np.array_equal(
                old_data.backward.adjacent_lcps(), new_data.backward.adjacent_lcps()
            )
            assert old_data.pairs == new_data.pairs
            assert np.array_equal(
                old_data.forward.raw_to_sorted, new_data.forward.raw_to_sorted
            )

    # Sharded builds: the per-shard construction path must not change answers.
    old_sharded = build_index(
        source, z, kind="MWSA", ell=ell, shards=3, max_pattern_len=2 * ell,
        method="reference",
    )
    new_sharded = build_index(
        source, z, kind="MWSA", ell=ell, shards=3, max_pattern_len=2 * ell,
        method="vectorized",
    )
    assert_same_answers(old_sharded, new_sharded, patterns, (name, "sharded"))
    for old_shard, new_shard in zip(old_sharded.shard_indexes, new_sharded.shard_indexes):
        assert leaf_tuples(old_shard.data.forward) == leaf_tuples(new_shard.data.forward)

    # Store round-trip: persisting the array-backed build and reloading it
    # must reproduce the reference-path answers too.
    save_index(tmp_path / "new.idx", new_pipeline.build("MWSA-G"))
    reloaded = load_index(tmp_path / "new.idx")
    assert_same_answers(old_pipeline.build("MWSA-G"), reloaded, patterns, (name, "store"))
    assert leaf_tuples(reloaded.data.forward) == leaf_tuples(
        old_pipeline.build("MWSA-G").data.forward
    )


def test_sort_parity_with_tiny_widening_limits(monkeypatch):
    """Force the widening rounds and the scalar-comparator fallback.

    Shrinking the prefix/widening limits makes every sort exercise the
    doubling rounds and the heavy-LCE fallback, which realistic alphabets
    almost never reach; the resulting order must still equal the reference
    sort's (the total order is unique).
    """
    from repro.indexes.minimizer_core import LeafCollection

    monkeypatch.setattr(LeafCollection, "PRESORT_PREFIX", 2)
    monkeypatch.setattr(LeafCollection, "SORT_WIDEN_LIMIT", 4)
    for seed in (31, 32):
        source = random_weighted_string("degenerate", 90, 3, seed)
        z, ell = 4.0, 3
        old_data = ConstructionPipeline(source, z, ell=ell, method="reference").index_data()
        new_data = ConstructionPipeline(source, z, ell=ell, method="vectorized").index_data()
        assert leaf_tuples(old_data.forward) == leaf_tuples(new_data.forward)
        assert leaf_tuples(old_data.backward) == leaf_tuples(new_data.backward)
        assert np.array_equal(
            old_data.forward.adjacent_lcps(), new_data.forward.adjacent_lcps()
        )


def test_sort_parity_beyond_byte_packing():
    """Alphabets too wide for byte-packed keys use the int-column radix path."""
    rng = np.random.default_rng(21)
    sigma = 300
    n = 60
    alphabet = Alphabet([f"s{i}" for i in range(sigma)])
    matrix = np.zeros((n, sigma))
    matrix[np.arange(n), rng.integers(0, sigma, n)] = 1.0
    fuzzy = rng.random(n) < 0.3
    matrix[fuzzy] = 0.0
    matrix[fuzzy, rng.integers(0, sigma, int(fuzzy.sum()))] = 0.6
    matrix[fuzzy, rng.integers(0, sigma, int(fuzzy.sum()))] += 0.4
    source = WeightedString(matrix, alphabet, normalize=True)
    z, ell = 3.0, 2
    old_data = ConstructionPipeline(source, z, ell=ell, method="reference").index_data()
    new_data = ConstructionPipeline(source, z, ell=ell, method="vectorized").index_data()
    assert len(new_data.forward) > 0
    assert leaf_tuples(old_data.forward) == leaf_tuples(new_data.forward)
    assert leaf_tuples(old_data.backward) == leaf_tuples(new_data.backward)


def test_merge_carries_search_caches():
    """Update-merge keeps kept rows' packed search keys; fresh rows get new ones."""
    source = random_weighted_string("skewed", 80, 4, 2203)
    z, ell = 4.0, 3
    index = build_index(source, z, kind="MWSA", ell=ell)
    data = index.data
    # Warm the byte-key cache, then update through the localized repair.
    piece = [int(code) for code in source.heavy_codes()[:ell]]
    data.forward.prefix_range_many([piece])
    assert data.forward._search_keys is not None
    cached_width = data.forward._search_width
    rng = np.random.default_rng(5)
    position = int(rng.integers(0, len(source)))
    row = np.zeros(source.sigma)
    row[int(rng.integers(source.sigma))] = 1.0
    report = index.apply_updates([(position, row)])
    if report.strategy == "localized":
        merged = index.data.forward
        if merged._search_keys is not None:
            # The fast two-run merge re-keys at (at least) the presort
            # prefix width, so the carried cache can be wider than the
            # query-seeded one — never narrower.
            assert merged._search_width >= cached_width
            assert len(merged._search_keys) == len(merged)
            # The carried keys must equal a from-scratch recomputation.
            fresh = build_index(source, z, kind="MWSA", ell=ell).data.forward
            fresh._batch_search_keys(merged._search_width)
            assert np.array_equal(merged._search_keys, fresh._search_keys)
    # Whatever the strategy, answers must stay oracle-exact.
    fresh = build_index(source, z, kind="MWSA", ell=ell)
    patterns = random_patterns(source, ell, 99)
    assert index.match_many(patterns) == fresh.match_many(patterns)
