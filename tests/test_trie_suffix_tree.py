"""Tests for repro.strings.trie and repro.strings.suffix_tree."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.matching import find_occurrences
from repro.strings.suffix_tree import SuffixTree
from repro.strings.trie import CompactedTrie


def build_trie(keys):
    keys = sorted(keys)
    lcps = [0] * len(keys)
    for index in range(1, len(keys)):
        previous, current = keys[index - 1], keys[index]
        shared = 0
        while shared < min(len(previous), len(current)) and previous[shared] == current[shared]:
            shared += 1
        lcps[index] = shared
    trie = CompactedTrie(
        [len(key) for key in keys], lcps, lambda key, depth: ord(keys[key][depth])
    )
    return keys, trie


class TestCompactedTrie:
    def test_prefix_ranges(self):
        keys, trie = build_trie(["ab", "abc", "abd", "b", "ba"])
        for pattern in ["a", "ab", "abc", "b", "ba", "", "c", "abe"]:
            lo, hi = trie.descend([ord(c) for c in pattern])
            expected = [i for i, key in enumerate(keys) if key.startswith(pattern)]
            assert list(range(lo, hi)) == expected

    def test_duplicate_keys(self):
        keys, trie = build_trie(["aa", "aa", "ab"])
        assert trie.matching_keys([ord("a"), ord("a")]) == [0, 1]

    def test_empty_key(self):
        keys, trie = build_trie(["", "a"])
        assert trie.descend([]) == (0, 2)
        assert trie.descend([ord("a")]) == (1, 2)

    def test_node_count_bounded(self):
        keys, trie = build_trie(["abc", "abd", "ae", "b"])
        assert trie.key_count == 4
        assert trie.node_count <= 2 * len(keys) + 1

    def test_key_length_accessor(self):
        keys, trie = build_trie(["xy", "xyz"])
        assert trie.key_length(0) == 2

    def test_iter_nodes_covers_all_leaves(self):
        keys, trie = build_trie(["ca", "cb", "d"])
        leaves = [node for node in trie.iter_nodes() if node.is_leaf()]
        assert sum(len(node.terminal) for node in trie.iter_nodes()) == len(keys)
        assert all(node.edge_length >= 0 for node in trie.iter_nodes())

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.text(alphabet="abc", max_size=6), min_size=1, max_size=12),
        st.text(alphabet="abc", max_size=4),
    )
    def test_descend_matches_startswith(self, keys, pattern):
        keys, trie = build_trie(keys)
        lo, hi = trie.descend([ord(c) for c in pattern])
        assert list(range(lo, hi)) == [
            i for i, key in enumerate(keys) if key.startswith(pattern)
        ]


class TestSuffixTree:
    def test_figure2_suffix_count(self):
        # Fig. 2 of the paper: the suffix tree of CAGAGA$ has 7 leaves.
        tree = SuffixTree([1, 0, 2, 0, 2, 0])  # CAGAGA with A<C<G coded 0<1<2
        assert tree.length == 6
        assert tree.count([0, 2, 0]) == 2      # AGA occurs twice

    def test_occurrences_match_naive(self):
        rng = random.Random(3)
        text = [rng.randrange(3) for _ in range(50)]
        tree = SuffixTree(text)
        for _ in range(25):
            m = rng.randint(1, 5)
            pattern = [rng.randrange(3) for _ in range(m)]
            assert tree.occurrences(pattern) == find_occurrences(text, pattern)

    def test_contains_and_empty_pattern(self):
        tree = SuffixTree([0, 1, 2])
        assert tree.contains([1, 2])
        assert not tree.contains([2, 1])
        assert tree.count([]) == 4

    def test_node_count_linear(self):
        tree = SuffixTree([0, 1] * 20)
        assert tree.node_count <= 2 * (tree.length + 1)

    def test_suffix_array_order_exposed(self):
        tree = SuffixTree([2, 1, 0])
        assert sorted(tree.suffix_array_order.tolist()) == [0, 1, 2, 3]
