"""The query planner/executor: modes, probabilities, thresholds, all variants.

Probability reporting is checked against a brute-force O(n·m) *product*
oracle — the direct left-to-right float64 multiplication over the raw
probability matrix — and must match to exact float64 equality on every
variant (7 monolithic kinds + the sharded index, freshly built and
store-loaded), including boundary-straddling pattern lengths on the sharded
index.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_oracle_equivalence import random_source

from repro.core.estimation import build_z_estimation
from repro.datasets.patterns import sample_valid_patterns
from repro.errors import PatternError, QueryError
from repro.indexes import (
    EMPTY_PATTERN_MESSAGE,
    BatchQueryEngine,
    Query,
    QueryMode,
    QueryPlanner,
    brute_force_occurrences,
    build_index,
)
from repro.io.store import load_index, save_index

VARIANTS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE", "SHARDED")
Z = 4.0
ELL = 4


@pytest.fixture(scope="module")
def source():
    return random_source(44, 3, 7)


@pytest.fixture(scope="module")
def indexes(source):
    built = {}
    for kind in VARIANTS:
        if kind == "SHARDED":
            built[kind] = build_index(
                source, Z, kind="MWSA", ell=ELL, shards=3, max_pattern_len=2 * ELL
            )
        else:
            built[kind] = build_index(source, Z, kind=kind, ell=ELL)
    return built


def product_oracle(source, pattern, position) -> float:
    """The O(m) direct product of matrix entries (the reference probability)."""
    probability = 1.0
    for offset, code in enumerate(pattern):
        probability *= float(source.matrix[position + offset, code])
    return probability


def expected_probs(source, pattern):
    """Brute-force O(n·m) ``locate_probs`` oracle at the built threshold."""
    positions = brute_force_occurrences(source, pattern, Z)
    return positions, [product_oracle(source, pattern, p) for p in positions]


def expected_topk(source, pattern, k):
    positions, probabilities = expected_probs(source, pattern)
    ranked = sorted(zip(positions, probabilities), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:k]


@pytest.fixture(scope="module")
def patterns(source):
    """Valid + random patterns spanning ℓ .. 2ℓ (the sharded overlap bound)."""
    estimation = build_z_estimation(source, Z)
    rng = np.random.default_rng(13)
    pool = []
    for m in (ELL, ELL + 1, 2 * ELL - 1, 2 * ELL):
        try:
            pool.extend(
                sample_valid_patterns(
                    source, Z, m=m, count=2, estimation=estimation, seed=m
                )
            )
        except Exception:
            pass  # no valid window of this length — fine
        pool.append([int(code) for code in rng.integers(0, source.sigma, size=m)])
    assert pool
    return pool


class TestQueryModel:
    def test_mode_normalization(self):
        assert Query([0], mode="locate").mode is QueryMode.LOCATE
        assert Query([0], mode=QueryMode.COUNT).mode is QueryMode.COUNT

    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError, match="unknown query mode"):
            Query([0], mode="fuzzy")

    def test_topk_requires_k(self):
        with pytest.raises(QueryError, match="k >= 1"):
            Query([0], mode="topk")
        with pytest.raises(QueryError, match="k >= 1"):
            Query([0], mode="topk", k=0)

    def test_k_rejected_outside_topk(self):
        with pytest.raises(QueryError, match="only meaningful for topk"):
            Query([0], mode="locate", k=3)

    def test_z_and_zs_mutually_exclusive(self):
        with pytest.raises(QueryError, match="not both"):
            Query([0], z=2.0, zs=(2.0, 4.0))

    def test_empty_sweep_rejected(self):
        with pytest.raises(QueryError, match="at least one z"):
            Query([0], zs=())

    def test_non_integer_k_rejected(self):
        with pytest.raises(QueryError, match="k must be an integer"):
            Query([0], mode="topk", k="x")

    def test_options_with_prebuilt_query_rejected(self, indexes):
        index = indexes["MWSA"]
        with pytest.raises(QueryError, match="prebuilt Query"):
            index.query(Query([0] * ELL), z=2.0)


class TestModesAcrossVariants:
    @pytest.mark.parametrize("kind", VARIANTS)
    def test_locate_matches_oracle(self, indexes, source, patterns, kind):
        index = indexes[kind]
        for pattern in patterns:
            assert index.locate(pattern) == brute_force_occurrences(source, pattern, Z)

    @pytest.mark.parametrize("kind", VARIANTS)
    def test_count_and_exists_modes(self, indexes, source, patterns, kind):
        index = indexes[kind]
        for pattern in patterns:
            oracle = brute_force_occurrences(source, pattern, Z)
            assert index.query(pattern, mode="count").count == len(oracle)
            assert index.query(pattern, mode="exists").exists == bool(oracle)

    @pytest.mark.parametrize("kind", VARIANTS)
    def test_locate_probs_exact_against_product_oracle(
        self, indexes, source, patterns, kind
    ):
        index = indexes[kind]
        for pattern in patterns:
            result = index.query(pattern, mode="locate_probs")
            positions, probabilities = expected_probs(source, pattern)
            assert result.positions == positions
            # exact float64 equality against the O(n·m) product oracle
            assert result.probabilities == probabilities

    @pytest.mark.parametrize("kind", VARIANTS)
    def test_topk_ranking_exact(self, indexes, source, patterns, kind):
        index = indexes[kind]
        for pattern in patterns:
            for k in (1, 2, 100):
                assert index.topk(pattern, k) == expected_topk(source, pattern, k)

    @pytest.mark.parametrize("kind", VARIANTS)
    def test_batched_rich_queries_match_scalar(self, indexes, patterns, kind):
        """A mixed batch (duplicates included) equals per-pattern queries."""
        index = indexes[kind]
        batch = [Query(p, mode="locate_probs") for p in patterns + patterns[:2]]
        batched = index.query_many(batch)
        for query, result in zip(batch, batched):
            single = index.query(Query(query.pattern, mode="locate_probs"))
            assert result.positions == single.positions
            assert result.probabilities == single.probabilities

    @pytest.mark.parametrize("kind", ("MWSA", "WST", "SHARDED"))
    def test_mixed_mode_batch(self, indexes, source, patterns, kind):
        """locate and topk queries mixed in one batch each get their answer."""
        index = indexes[kind]
        batch = [Query(p) for p in patterns]
        batch.append(Query(patterns[0], mode="topk", k=2))
        batch.append(Query(patterns[1], mode="count"))
        results = index.query_many(batch)
        for pattern, result in zip(patterns, results):
            assert result.positions == brute_force_occurrences(source, pattern, Z)
            assert result.probabilities is None
        ranked = results[len(patterns)]
        assert list(zip(ranked.positions, ranked.probabilities)) == expected_topk(
            source, patterns[0], 2
        )
        assert results[-1].count == len(
            brute_force_occurrences(source, patterns[1], Z)
        )


class TestStoreLoadedIndexes:
    @pytest.mark.parametrize("kind", ("MWSA", "WSA", "SHARDED"))
    def test_rich_modes_after_store_round_trip(
        self, tmp_path, indexes, source, patterns, kind
    ):
        index = indexes[kind]
        path = tmp_path / f"{kind}.idx"
        save_index(path, index)
        loaded = load_index(path)
        for pattern in patterns:
            assert loaded.locate_probs(pattern) == index.locate_probs(pattern)
            assert loaded.topk(pattern, 3) == index.topk(pattern, 3)
            positions, probabilities = expected_probs(source, pattern)
            assert loaded.query(pattern, mode="locate_probs").probabilities == (
                probabilities
            )


class TestThresholdOverrides:
    @pytest.mark.parametrize("kind", VARIANTS)
    def test_stricter_z_matches_oracle(self, indexes, source, patterns, kind):
        index = indexes[kind]
        for pattern in patterns:
            for z in (1.5, 2.0, Z):
                result = index.query(pattern, z=z)
                assert result.positions == brute_force_occurrences(source, pattern, z)
                assert result.z == z

    def test_looser_z_rejected(self, indexes, patterns):
        for index in indexes.values():
            with pytest.raises(QueryError, match="looser than the index's"):
                index.query(patterns[0], z=2 * Z)

    @pytest.mark.parametrize("kind", ("MWSA", "WST", "SHARDED"))
    def test_multi_z_sweep(self, indexes, source, patterns, kind):
        index = indexes[kind]
        zs = (1.5, 2.0, Z)
        for pattern in patterns[:4]:
            result = index.query(pattern, mode="locate_probs", zs=zs)
            assert result.z is None
            assert len(result.sweep) == len(zs)
            for z, sub in zip(zs, result.sweep):
                oracle = brute_force_occurrences(source, pattern, z)
                assert sub.z == z
                assert sub.positions == oracle
                assert sub.probabilities == [
                    product_oracle(source, pattern, p) for p in oracle
                ]
            assert result.exists == any(sub.exists for sub in result.sweep)

    def test_sweep_probabilities_are_filtered_not_recomputed(self, indexes, source):
        """A sweep's stricter-z probabilities are a subset of the full set."""
        index = indexes["MWSA"]
        pattern = [0] * ELL
        result = index.query(pattern, mode="locate_probs", zs=(2.0, Z))
        strict, full = result.sweep
        pairs_full = dict(zip(full.positions, full.probabilities))
        for position, probability in zip(strict.positions, strict.probabilities):
            assert pairs_full[position] == probability


class TestEmptyPatternSemantics:
    """Scalar locate, match_many and the brute-force oracle agree exactly."""

    @pytest.mark.parametrize("empty", ([], "", np.array([], dtype=np.int64)))
    def test_all_paths_raise_the_same_error(self, indexes, source, empty):
        with pytest.raises(PatternError) as oracle_error:
            brute_force_occurrences(source, empty, Z)
        assert str(oracle_error.value) == EMPTY_PATTERN_MESSAGE
        for index in indexes.values():
            with pytest.raises(PatternError) as scalar_error:
                index.locate(empty)
            assert str(scalar_error.value) == EMPTY_PATTERN_MESSAGE
            with pytest.raises(PatternError) as batch_error:
                index.match_many([[0] * ELL, empty])
            assert str(batch_error.value) == EMPTY_PATTERN_MESSAGE

    def test_query_modes_reject_empty_patterns_too(self, indexes):
        index = indexes["MWSA"]
        for mode in ("exists", "count", "locate_probs"):
            with pytest.raises(PatternError) as error:
                index.query([], mode=mode)
            assert str(error.value) == EMPTY_PATTERN_MESSAGE


class TestPlannerStrategies:
    def test_scalar_vs_batch_strategy(self, indexes, patterns):
        planner = QueryPlanner(indexes["MWSA"])
        planner.execute([patterns[0]])
        assert planner.last_stats["strategy"] == "scalar"
        assert planner.last_stats["fan_out"] is False
        planner.execute(patterns[:3])
        assert planner.last_stats["strategy"] == "batch"
        assert planner.last_stats["unique_patterns"] == len(
            {tuple(p) for p in patterns[:3]}
        )

    def test_sharded_fan_out_recorded(self, indexes, patterns):
        planner = QueryPlanner(indexes["SHARDED"])
        planner.execute(patterns[:2])
        assert planner.last_stats["fan_out"] is True

    def test_duplicate_patterns_answered_once(self, indexes, patterns):
        planner = QueryPlanner(indexes["MWSA"])
        pattern = patterns[0]
        results = planner.execute([pattern, pattern, Query(pattern, mode="count")])
        assert planner.last_stats["unique_patterns"] == 1
        assert results[0].positions == results[1].positions
        assert results[2].count == len(results[0].positions)

    def test_engine_compat_wrapper(self, indexes, patterns):
        engine = BatchQueryEngine(indexes["MWSA"])
        results = engine.match_many([patterns[0], patterns[0]])
        assert engine.last_stats == {
            "patterns": 2,
            "unique_patterns": 1,
            "generation": 0,
        }
        assert results[0] == indexes["MWSA"].locate(patterns[0])

    def test_sweep_counts_subqueries(self, indexes, patterns):
        planner = QueryPlanner(indexes["MWSA"])
        planner.execute([Query(patterns[0], zs=(2.0, 3.0, Z))])
        assert planner.last_stats["subqueries"] == 3
