"""Tests for repro.strings.lcp and repro.strings.rmq."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.lcp import LCEIndex, lcp_array, lcp_of_strings
from repro.strings.rmq import SparseTableRMaxQ, SparseTableRMQ, report_at_least
from repro.strings.suffix_array import suffix_array


def brute_lcp(a, b):
    length = 0
    while length < min(len(a), len(b)) and a[length] == b[length]:
        length += 1
    return length


class TestLCP:
    def test_lcp_of_strings(self):
        assert lcp_of_strings([1, 2, 3], [1, 2, 4]) == 2
        assert lcp_of_strings([], [1]) == 0
        assert lcp_of_strings([5], [5]) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), max_size=40))
    def test_kasai_matches_brute_force(self, codes):
        sa = suffix_array(codes)
        lcp = lcp_array(np.asarray(codes), sa)
        assert lcp[0] == 0 if len(codes) else True
        for rank in range(1, len(codes)):
            assert lcp[rank] == brute_lcp(codes[sa[rank - 1] :], codes[sa[rank] :])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=30))
    def test_lce_index_matches_brute_force(self, codes):
        lce = LCEIndex(codes)
        for first in range(len(codes)):
            for second in range(len(codes)):
                assert lce.lce(first, second) == brute_lcp(codes[first:], codes[second:])

    def test_lce_compare_suffixes(self):
        lce = LCEIndex([0, 1, 0, 1])
        assert lce.compare_suffixes(0, 2) > 0   # "0101" > "01"
        assert lce.compare_suffixes(2, 0) < 0
        assert lce.compare_suffixes(1, 1) == 0

    def test_lce_nbytes_positive(self):
        assert LCEIndex([0, 1, 2]).nbytes() > 0


class TestRMQ:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=40))
    def test_sparse_table_min(self, values):
        rmq = SparseTableRMQ(values)
        for start in range(len(values)):
            for stop in range(start + 1, len(values) + 1):
                assert rmq.range_min(start, stop) == min(values[start:stop])

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SparseTableRMQ([1, 2]).range_min(1, 1)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=40))
    def test_sparse_table_max(self, values):
        rmax = SparseTableRMaxQ(values)
        for start in range(len(values)):
            for stop in range(start + 1, len(values) + 1):
                best = rmax.range_argmax(start, stop)
                assert start <= best < stop
                assert values[best] == max(values[start:stop])

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30),
        threshold=st.integers(min_value=0, max_value=20),
    )
    def test_report_at_least(self, values, threshold):
        rmax = SparseTableRMaxQ(values)
        reported = sorted(report_at_least(rmax, 0, len(values), threshold))
        assert reported == [i for i, value in enumerate(values) if value >= threshold]

    def test_report_on_subrange(self):
        rmax = SparseTableRMaxQ([5, 1, 7, 3, 7])
        assert sorted(report_at_least(rmax, 1, 4, 3)) == [2, 3]
        assert report_at_least(rmax, 2, 2, 0) == []
