"""The binary index store: round trips, memory mapping, format validation."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.indexes import build_index
from repro.io.store import STORE_FORMAT, load_index, save_index

ALL_KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE")


@pytest.fixture(scope="module")
def stored_source():
    from repro.datasets.synthetic import sparse_uncertainty_string

    return sparse_uncertainty_string(200, 4, delta=0.3, seed=7)


def _patterns(source, count=15, seed=0):
    rng = np.random.default_rng(seed)
    return [
        [int(code) for code in rng.integers(0, source.sigma, size=m)]
        for m in (4, 5, 7)
        for _ in range(count // 3)
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_kind_round_trips(self, tmp_path, stored_source, kind):
        index = build_index(stored_source, 4, kind=kind, ell=4)
        path = tmp_path / f"{kind}.idx"
        save_index(path, index)
        loaded = load_index(path)
        patterns = _patterns(stored_source)
        assert loaded.match_many(patterns) == index.match_many(patterns)
        assert loaded.locate(patterns[0]) == index.locate(patterns[0])
        assert loaded.z == index.z
        assert loaded.minimum_pattern_length == index.minimum_pattern_length

    def test_loaded_stats_marked_and_preserved(self, tmp_path, stored_source):
        index = build_index(stored_source, 4, kind="MWSA", ell=4)
        path = tmp_path / "mwsa.idx"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.stats.counters["loaded_from_store"] is True
        assert loaded.stats.index_size_bytes == index.stats.index_size_bytes
        assert loaded.stats.name == index.stats.name

    def test_mmap_and_ram_modes_agree(self, tmp_path, stored_source):
        index = build_index(stored_source, 4, kind="MWSA-G", ell=4)
        path = tmp_path / "grid.idx"
        save_index(path, index)
        mapped = load_index(path, mmap=True)
        in_ram = load_index(path, mmap=False)
        patterns = _patterns(stored_source)
        assert mapped.match_many(patterns) == in_ram.match_many(patterns)
        # The default load memory-maps the probability matrix from the file
        # (WeightedString re-wraps the array, so check the buffer it's backed by).
        def file_backed(array) -> bool:
            while isinstance(array, np.ndarray):
                if isinstance(array, np.memmap):
                    return True
                array = array.base
            return array is not None and type(array).__name__ == "mmap"

        assert file_backed(mapped.source.matrix)
        assert not file_backed(in_ram.source.matrix)

    def test_sharded_round_trip(self, tmp_path, stored_source):
        index = build_index(
            stored_source, 4, kind="MWSA", ell=4, shards=3, max_pattern_len=10
        )
        path = tmp_path / "sharded.idx"
        save_index(path, index)
        loaded = load_index(path)
        patterns = _patterns(stored_source)
        assert loaded.match_many(patterns) == index.match_many(patterns)
        assert loaded.maximum_pattern_length == 10
        assert [
            (shard.start, shard.core_end, shard.end) for shard in loaded.shards
        ] == [(shard.start, shard.core_end, shard.end) for shard in index.shards]

    def test_exact_probability_round_trip(self, tmp_path, stored_source):
        index = build_index(stored_source, 4, kind="WSA")
        path = tmp_path / "wsa.idx"
        save_index(path, index)
        loaded = load_index(path)
        assert np.array_equal(
            np.asarray(loaded.source.matrix), stored_source.matrix
        )


class TestFormatValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.idx"
        path.write_bytes(b"NOTANIDX" + b"\x00" * 32)
        with pytest.raises(SerializationError, match="bad magic"):
            load_index(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            load_index(tmp_path / "absent.idx")

    def _write_header_only(self, path, header: dict) -> None:
        header_bytes = json.dumps(header).encode("utf-8")
        path.write_bytes(
            b"RPROIDX\n" + struct.pack("<Q", len(header_bytes)) + header_bytes
        )

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.idx"
        self._write_header_only(
            path, {"format": STORE_FORMAT, "version": 99, "meta": {}, "arrays": {}}
        )
        with pytest.raises(SerializationError, match="version"):
            load_index(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.idx"
        self._write_header_only(
            path, {"format": "someone.elses", "version": 1, "meta": {}, "arrays": {}}
        )
        with pytest.raises(SerializationError, match="format"):
            load_index(path)

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "corrupt.idx"
        path.write_bytes(b"RPROIDX\n" + struct.pack("<Q", 10) + b"not json!!")
        with pytest.raises(SerializationError, match="corrupt"):
            load_index(path)

    def test_unknown_family_rejected(self, tmp_path):
        path = tmp_path / "family.idx"
        self._write_header_only(
            path,
            {
                "format": STORE_FORMAT,
                "version": 1,
                "meta": {
                    "z": 4,
                    "alphabet": ["A", "B"],
                    "body": {"family": "martian"},
                },
                "arrays": {
                    "source": {"dtype": "<f8", "shape": [0, 2], "offset": 0}
                },
            },
        )
        with pytest.raises(SerializationError, match="family"):
            load_index(path)


class TestShardedDirectoryStore:
    """The per-shard directory store and its manifest validation."""

    def _sharded(self, stored_source):
        return build_index(
            stored_source, 4.0, kind="MWSA", ell=4, shards=3, max_pattern_len=8
        )

    def test_round_trip(self, tmp_path, stored_source):
        from repro.io.store import load_sharded_store, save_sharded_store

        index = self._sharded(stored_source)
        save_sharded_store(tmp_path / "store", index)
        loaded = load_sharded_store(tmp_path / "store")
        assert np.array_equal(
            np.asarray(loaded.source.matrix), stored_source.matrix
        )
        assert loaded.generations == index.generations
        for pattern in _patterns(stored_source):
            assert loaded.locate(pattern) == index.locate(pattern)

    def test_monolithic_rejected(self, tmp_path, stored_source):
        from repro.io.store import save_sharded_store

        mono = build_index(stored_source, 4.0, kind="MWSA", ell=4)
        with pytest.raises(SerializationError, match="ShardedIndex"):
            save_sharded_store(tmp_path / "store", mono)

    def test_bad_manifest_rejected(self, tmp_path, stored_source):
        from repro.io.store import load_sharded_store, save_sharded_store

        index = self._sharded(stored_source)
        save_sharded_store(tmp_path / "store", index)
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        manifest["format"] = "something.else"
        (tmp_path / "store" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SerializationError, match="format"):
            load_sharded_store(tmp_path / "store")

    def test_refresh_rejects_different_shard_plan(self, tmp_path, stored_source):
        from repro.io.store import refresh_sharded_store, save_sharded_store

        index = self._sharded(stored_source)
        save_sharded_store(tmp_path / "store", index)
        resharded = build_index(
            stored_source, 4.0, kind="MWSA", ell=4, shards=2, max_pattern_len=8
        )
        with pytest.raises(SerializationError, match="shard plan"):
            refresh_sharded_store(tmp_path / "store", resharded)


class TestGenerationNamedRefresh:
    """Generation-stamped shard files and the minimal re-map reload."""

    def _sharded(self, stored_source):
        return build_index(
            stored_source, 4.0, kind="MWSA", ell=4, shards=3, max_pattern_len=8
        )

    def _store(self, tmp_path, stored_source):
        from repro.io.store import load_sharded_store, save_sharded_store

        index = self._sharded(stored_source)
        save_sharded_store(tmp_path / "store", index)
        # Work on the loaded copy (RAM mode: we mutate and re-save it).
        return tmp_path / "store", load_sharded_store(tmp_path / "store", mmap=False)

    def test_dirty_shards_get_new_files_and_clean_files_survive(
        self, tmp_path, stored_source
    ):
        from repro.io.store import load_sharded_store, refresh_sharded_store

        directory, index = self._store(tmp_path, stored_source)
        before = {path.name: path.stat().st_mtime_ns for path in directory.iterdir()}
        report = index.apply_updates([(1, {"A": 0.6, "C": 0.4})])
        outcome = refresh_sharded_store(directory, index, generation_names=True)
        assert len(outcome["rewritten"]) == 1
        assert outcome["skipped"] == 2
        # The dirty shard landed in a NEW generation-stamped file; the old
        # file still exists (live mmaps!) and is listed as obsolete.
        (dirty_number,) = outcome["rewritten"]
        manifest = json.loads((directory / "manifest.json").read_text())
        new_name = manifest["shards"][dirty_number]["file"]
        assert f".g{manifest['shards'][dirty_number]['generation']}." in new_name
        assert len(outcome["obsolete"]) == 1
        obsolete = directory / outcome["obsolete"][0].split("/")[-1]
        assert obsolete.exists()
        # Clean shard files are byte-untouched.
        untouched = {
            name: mtime
            for name, mtime in before.items()
            if name != obsolete.name and name != "manifest.json"
        }
        for name, mtime in untouched.items():
            assert (directory / name).stat().st_mtime_ns == mtime
        # A fresh load follows the manifest to the new file and answers match.
        reloaded = load_sharded_store(directory)
        for pattern in _patterns(stored_source):
            assert reloaded.locate(pattern) == index.locate(pattern)

    def test_reload_sharded_store_remaps_only_moved_shards(
        self, tmp_path, stored_source
    ):
        from repro.io.store import (
            load_sharded_store,
            refresh_sharded_store,
            reload_sharded_store,
        )

        directory, authority = self._store(tmp_path, stored_source)
        served = load_sharded_store(directory, mmap=True)
        report = authority.apply_updates([(1, {"A": 0.6, "C": 0.4})])
        refresh_sharded_store(directory, authority, generation_names=True)
        reloaded, moved = reload_sharded_store(directory, served)
        assert len(moved) == 1
        # Untouched shards are the same objects (no re-map, no re-read).
        for number, shard in enumerate(served.shard_indexes):
            if number in moved:
                assert reloaded.shard_indexes[number] is not shard
            else:
                assert reloaded.shard_indexes[number] is shard
        for pattern in _patterns(stored_source):
            assert reloaded.locate(pattern) == authority.locate(pattern)

    def test_default_refresh_stays_in_place(self, tmp_path, stored_source):
        from repro.io.store import refresh_sharded_store

        directory, index = self._store(tmp_path, stored_source)
        names_before = sorted(path.name for path in directory.iterdir())
        index.apply_updates([(1, {"A": 0.6, "C": 0.4})])
        outcome = refresh_sharded_store(directory, index)
        assert outcome["obsolete"] == []
        assert sorted(path.name for path in directory.iterdir()) == names_before
