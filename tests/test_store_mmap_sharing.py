"""Memory-mapped loading is real, for every index variant, end to end.

The multi-worker serving story rests on one physical property: after
``load_index(..., mmap=True)`` the index's persisted arrays are views into
:class:`numpy.memmap` objects, so N forked workers mapping the same store
files share the page cache instead of holding N private copies.  These tests
pin that property *after* running a query through each loaded index — a
variant that silently materialized its arrays on first use would pass a
naive just-after-load check and still defeat the sharing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes import build_index
from repro.io.store import (
    load_index,
    load_sharded_store,
    save_index,
    save_sharded_store,
    stored_arrays,
)

ALL_KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE")


@pytest.fixture(scope="module")
def mapped_source():
    from repro.datasets.synthetic import sparse_uncertainty_string

    return sparse_uncertainty_string(150, 4, delta=0.3, seed=11)


def _patterns(source, count=9, seed=3):
    rng = np.random.default_rng(seed)
    return [
        [int(code) for code in rng.integers(0, source.sigma, size=m)]
        for m in (4, 5, 7)
        for _ in range(count // 3)
    ]


def chains_to_memmap(array) -> bool:
    """True when ``array`` is (a view into) a ``numpy.memmap``."""
    node = array
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


def assert_arrays_mapped(index, label: str) -> int:
    """Every persisted, non-trivial array of ``index`` must be mmap-backed."""
    mapped = 0
    for name, array in stored_arrays(index).items():
        if not isinstance(array, np.ndarray) or array.size == 0:
            continue  # empty arrays carry no pages to share
        if "pairs" in name:
            continue  # re-materialized from tuples on load, documented exception
        if "est.cp." in name:
            continue  # checkpoint blocks are re-concatenated on every pack
        assert chains_to_memmap(array), f"{label}: array {name!r} is not mmap-backed"
        mapped += 1
    assert mapped > 0, f"{label}: no arrays checked"
    return mapped


class TestMmapBackedArrays:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_kind_serves_from_the_map(self, tmp_path, mapped_source, kind):
        index = build_index(mapped_source, 4.0, kind=kind, ell=4)
        path = tmp_path / f"{kind}.idx"
        save_index(path, index)
        loaded = load_index(path, mmap=True)
        # Queries first: lazy re-materialization on first use would otherwise
        # hide behind a just-after-load check.
        for pattern in _patterns(mapped_source):
            assert loaded.locate(pattern) == index.locate(pattern)
        assert_arrays_mapped(loaded, kind)

    def test_ram_mode_is_not_mapped(self, tmp_path, mapped_source):
        """The control: mmap=False must NOT chain to a memmap."""
        index = build_index(mapped_source, 4.0, kind="MWSA", ell=4)
        path = tmp_path / "ram.idx"
        save_index(path, index)
        in_ram = load_index(path, mmap=False)
        for name, array in stored_arrays(in_ram).items():
            if isinstance(array, np.ndarray) and array.size:
                assert not chains_to_memmap(array), name

    def test_sharded_store_maps_every_shard(self, tmp_path, mapped_source):
        index = build_index(
            mapped_source, 4.0, kind="MWSA", ell=4, shards=3, max_pattern_len=8
        )
        save_sharded_store(tmp_path / "store", index)
        loaded = load_sharded_store(tmp_path / "store", mmap=True)
        for pattern in _patterns(mapped_source):
            assert loaded.locate(pattern) == index.locate(pattern)
        for number, shard in enumerate(loaded.shard_indexes):
            assert_arrays_mapped(shard, f"shard {number}")
