"""Boundary-length audit of the plain (Section 5) vs grid (Theorem 9) queries.

The two query paths split a pattern at the leftmost minimizer of its first
length-ℓ window; the plain path searches only the longer piece and verifies,
the grid path intersects both pieces through 2D range reporting.  The
boundary regimes exercised here:

* ``m < ℓ``       — unsupported by every minimizer variant: both paths must
                    reject with the same :class:`PatternError`;
* ``m = ℓ``       — a single window; the backward piece can be a single
                    letter (``μ = 0``);
* ``m = 2ℓ - 1``  — the last length where every position of the pattern is
                    covered by a window containing the anchor (the Theorem 9
                    statement's length threshold);
* ``m ≥ 2ℓ``      — long patterns whose forward piece far exceeds ℓ.

Audit result (recorded 2026-07): no divergence — both paths are complete for
every ``m ≥ ℓ`` because the property end-points of a z-estimation are
monotone (if an occurrence at ``i`` respects ``π_j``, the property also
covers the suffix of the window from the anchor ``q ≥ i``), so the paired
forward/backward leaves anchored at ``q`` always extend over the whole
occurrence.  These tests pin that behaviour against regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_oracle_equivalence import random_source
from repro.core.estimation import build_z_estimation
from repro.datasets.patterns import sample_valid_patterns
from repro.errors import PatternError
from repro.indexes import brute_force_occurrences, build_index

PLAIN = ("MWST", "MWSA")
GRID = ("MWST-G", "MWSA-G")

BOUNDARY_CASES = [
    pytest.param(sigma, z, ell, seed, id=f"s{sigma}-z{z:g}-l{ell}-seed{seed}")
    for (sigma, z, ell) in ((2, 4.0, 3), (3, 4.0, 4), (2, 8.0, 5), (4, 2.0, 4))
    for seed in range(4)
]


def boundary_patterns(source, estimation, z, ell, seed) -> list[list[int]]:
    """Random and valid patterns at every boundary length of both paths."""
    rng = np.random.default_rng(seed)
    lengths = sorted(
        {ell, ell + 1, 2 * ell - 2, 2 * ell - 1, 2 * ell, 2 * ell + 1, 3 * ell}
    )
    patterns = []
    for m in lengths:
        if m < ell or m > len(source):
            continue
        patterns.append([int(code) for code in rng.integers(0, source.sigma, size=m)])
        try:
            patterns.extend(
                sample_valid_patterns(
                    source, z, m=m, count=2, estimation=estimation, seed=seed + m
                )
            )
        except Exception:
            pass  # no property-respecting window of this length
    return patterns


@pytest.mark.parametrize("sigma,z,ell,seed", BOUNDARY_CASES)
def test_plain_and_grid_agree_on_boundary_lengths(sigma, z, ell, seed):
    source = random_source(40, sigma, seed + 500)
    estimation = build_z_estimation(source, z)
    indexes = {
        kind: build_index(source, z, kind=kind, ell=ell, estimation=estimation)
        for kind in PLAIN + GRID
    }
    patterns = boundary_patterns(source, estimation, z, ell, seed)
    assert any(len(pattern) >= 2 * ell - 1 for pattern in patterns)
    for pattern in patterns:
        oracle = brute_force_occurrences(source, pattern, z)
        for kind, index in indexes.items():
            assert index.locate(pattern) == oracle, (
                f"{kind} diverges at boundary length {len(pattern)} (ell={ell})"
            )
    # The batch engine walks a different code path; it must agree too.
    for kind, index in indexes.items():
        assert index.match_many(patterns) == [
            brute_force_occurrences(source, pattern, z) for pattern in patterns
        ], f"{kind} batch path diverges on the boundary workload"


@pytest.mark.parametrize("kind", PLAIN + GRID)
def test_patterns_below_ell_rejected_consistently(kind):
    source = random_source(36, 3, 7)
    ell = 4
    index = build_index(source, 4.0, kind=kind, ell=ell)
    for m in range(1, ell):
        pattern = [0] * m
        with pytest.raises(PatternError):
            index.locate(pattern)
        with pytest.raises(PatternError):
            index.match_many([pattern])
    # Exactly ℓ is the first supported length on both paths.
    pattern = [0] * ell
    assert index.locate(pattern) == brute_force_occurrences(source, pattern, 4.0)


def test_minimum_pattern_length_reported():
    source = random_source(30, 2, 3)
    for kind, expected in (("MWSA", 5), ("MWSA-G", 5), ("WSA", 1), ("WST", 1)):
        index = build_index(source, 2.0, kind=kind, ell=5)
        assert index.minimum_pattern_length == expected
