"""The HTTP serving layer: parser, routes, batching, robustness, soak.

Everything runs against a real ``asyncio.start_server`` socket on an
ephemeral localhost port — the same stack the ``serve-http`` CLI runs — via
the stdlib-only :class:`~repro.service.client.AsyncHttpClient`.  No
pytest-asyncio on this box: each test drives its own ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from test_oracle_equivalence import random_source

from repro.datasets.patterns import sample_valid_patterns
from repro.errors import PatternError
from repro.indexes import build_index
from repro.indexes.base import brute_force_occurrences
from repro.service import QueryService
from repro.service.batching import MicroBatcher, RateLimiter
from repro.service.client import AsyncHttpClient
from repro.service.metrics import Histogram, MetricsRegistry
from repro.service.server import HttpError, HttpServer, read_request

Z = 4.0
ELL = 4


@pytest.fixture(scope="module")
def source():
    return random_source(60, 2, 13)


@pytest.fixture(scope="module")
def index(source):
    return build_index(source, Z, kind="MWSA", ell=ELL)


def run(coroutine):
    return asyncio.run(coroutine)


async def started_server(index, **options):
    """A served QueryService on an ephemeral port plus one connected client."""
    service = QueryService(index)
    server = HttpServer(service, **options)
    host, port = await server.start("127.0.0.1", 0)
    client = await AsyncHttpClient.connect(host, port)
    return server, service, client, (host, port)


# -- the request parser -------------------------------------------------------


def parse_bytes(blob: bytes):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_request(reader)

    return run(scenario())


class TestRequestParser:
    def test_parses_method_path_headers_and_body(self):
        request = parse_bytes(
            b"POST /query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\n\r\nhi"
        )
        assert request.method == "POST"
        assert request.target == "/query?x=1"
        assert request.path == "/query"
        assert request.headers["host"] == "h"
        assert request.body == b"hi"

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as error:
            parse_bytes(b"GARBAGE\r\n\r\n")
        assert error.value.status == 400

    def test_unsupported_protocol_version(self):
        with pytest.raises(HttpError) as error:
            parse_bytes(b"GET / HTTP/2\r\n\r\n")
        assert error.value.status == 505

    def test_chunked_bodies_rejected(self):
        with pytest.raises(HttpError) as error:
            parse_bytes(
                b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert error.value.status == 501

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as error:
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n")
        assert error.value.status == 400

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as error:
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        assert error.value.status == 413

    def test_truncated_body_raises_incomplete_read(self):
        with pytest.raises(asyncio.IncompleteReadError):
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi")

    def test_json_body_errors_are_http_400(self):
        request = parse_bytes(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{x}"
        )
        with pytest.raises(HttpError) as error:
            request.json()
        assert error.value.status == 400


# -- routes -------------------------------------------------------------------


class TestRoutes:
    def test_healthz_stats_metrics_and_404(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index)
            health = await client.request("GET", "/healthz")
            assert health.status == 200 and health.json()["status"] == "ok"
            await client.request("POST", "/query", {"pattern": [0, 1, 0, 0]})
            stats = await client.request("GET", "/stats")
            assert stats.status == 200
            payload = stats.json()
            assert payload["service"]["queries"] == 1
            assert payload["server"]["requests"] >= 2
            metrics = await client.request("GET", "/metrics")
            assert metrics.status == 200
            assert metrics.headers["content-type"].startswith("text/plain")
            text = metrics.text
            assert "# TYPE repro_http_requests_total counter" in text
            assert "# TYPE repro_http_request_seconds histogram" in text
            assert "repro_service_queries_total 1" in text
            assert "repro_service_hit_rate 0" in text
            missing = await client.request("GET", "/nope")
            assert missing.status == 404
            wrong = await client.request("GET", "/query")
            assert wrong.status == 405
            assert wrong.headers["allow"] == "POST"
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_query_answers_match_index_and_report_cache(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index)
            pattern = [0, 1, 0, 0]
            first = await client.request("POST", "/query", {"pattern": pattern})
            assert first.status == 200
            body = first.json()
            assert body["positions"] == index.locate(pattern)
            assert body["cached"] is False
            second = await client.request("POST", "/query", {"pattern": pattern})
            assert second.json()["cached"] is True
            modes = await client.request(
                "POST", "/query", {"pattern": pattern, "mode": "topk", "k": 2}
            )
            assert modes.status == 200
            ranked = modes.json()
            assert list(zip(ranked["positions"], ranked["probabilities"])) == (
                index.topk(pattern, 2)
            )
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_invalid_requests_are_400_never_5xx(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index)
            bad = [
                {"pattern": [0.9, 1, 0, 0]},          # non-integral codes
                {"pattern": [-0.5, 1, 0, 0]},         # negative non-integral
                {"pattern": [9, 1, 0, 0]},            # out of alphabet range
                {"pattern": [0]},                     # below ell
                {"pattern": ""},                      # empty
                {"pattern": [0, 1, 0, 0], "zs": []},  # empty sweep
                {"pattern": [0, 1, 0, 0], "z": 99},   # looser than index z
                {"pattern": [0, 1, 0, 0], "bogus": 1},
                {"paterns": [0, 1, 0, 0]},            # typo'd field
                {"pattern": [0, 1, 0, 0], "mode": "nope"},
            ]
            for payload in bad:
                response = await client.request("POST", "/query", payload)
                assert response.status == 400, payload
                assert "error" in response.json()
            # The service was never touched by a rejected request.
            assert service.stats()["queries"] == 0
            raw = await client.request("POST", "/query", "not an object")
            assert raw.status == 400
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_batch_endpoint_mixes_results_and_per_item_errors(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index)
            pattern = [0, 1, 0, 0]
            response = await client.request(
                "POST",
                "/query/batch",
                {"queries": [
                    pattern,
                    {"pattern": pattern, "mode": "count"},
                    [0.9, 1, 0, 0],
                    pattern,
                ]},
            )
            assert response.status == 200
            items = response.json()["results"]
            assert items[0]["positions"] == index.locate(pattern)
            assert items[0]["cached"] is False
            assert items[1]["count"] == index.count(pattern)
            assert "error" in items[2]
            assert items[3]["cached"] is True  # in-batch duplicate
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_update_endpoint_reweights_and_invalidates(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index)
            pattern = [0, 1, 0, 0]
            before = await client.request("POST", "/query", {"pattern": pattern})
            assert before.status == 200
            response = await client.request(
                "POST",
                "/update",
                {"updates": [{"position": 1, "distribution": {"A": 0.5, "B": 0.5}}]},
            )
            assert response.status == 200
            report = response.json()["update"]
            assert report["positions"] == [1]
            after = await client.request("POST", "/query", {"pattern": pattern})
            assert after.json()["positions"] == index.locate(pattern)
            health = await client.request("GET", "/healthz")
            assert health.json()["generation"] == 1
            malformed = await client.request(
                "POST", "/update", {"updates": [{"position": 999}]}
            )
            assert malformed.status == 400
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_interleaved_clients_report_correct_cached_flags(self, index):
        """Per-request provenance, not a global hit-counter delta."""

        async def scenario():
            server, service, client_a, address = await started_server(
                index, batching=False
            )
            client_b = await AsyncHttpClient.connect(*address)
            one, two = [0, 1, 0, 0], [1, 0, 1, 1]
            # Interleave two clients on two patterns: miss, miss, hit, hit.
            flags = []
            for client, pattern in (
                (client_a, one), (client_b, two), (client_a, one), (client_b, two),
            ):
                response = await client.request("POST", "/query", {"pattern": pattern})
                flags.append(response.json()["cached"])
            assert flags == [False, False, True, True]
            await client_a.close()
            await client_b.close()
            await server.shutdown()

        run(scenario())


# -- batching, robustness ------------------------------------------------------


class TestMicroBatching:
    def test_concurrent_singletons_coalesce(self, index):
        async def scenario():
            server, service, client, address = await started_server(
                index, batch_window=0.005, max_batch=64
            )
            await client.close()

            async def worker(pattern):
                worker_client = await AsyncHttpClient.connect(*address)
                responses = []
                for _ in range(5):
                    response = await worker_client.request(
                        "POST", "/query", {"pattern": pattern}
                    )
                    responses.append(response)
                await worker_client.close()
                return responses

            patterns = [[0, 1, 0, 0], [1, 0, 1, 1], [0, 0, 1, 0], [1, 1, 0, 0]]
            all_responses = await asyncio.gather(
                *(worker(pattern) for pattern in patterns for _ in range(2))
            )
            for responses, pattern in zip(
                all_responses, [p for p in patterns for _ in range(2)]
            ):
                for response in responses:
                    assert response.status == 200
                    assert response.json()["positions"] == index.locate(pattern)
            batching = server.server_stats()["batching"]
            assert batching["largest_batch"] > 1  # coalescing happened
            assert batching["batched_requests"] == 40
            await server.shutdown()

        run(scenario())

    def test_batching_disabled_is_per_request(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index, batching=False)
            for _ in range(3):
                response = await client.request(
                    "POST", "/query", {"pattern": [0, 1, 0, 0]}
                )
                assert response.status == 200
            batching = server.server_stats()["batching"]
            assert batching["enabled"] is False
            assert batching["largest_batch"] == 1
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_max_batch_flushes_early(self, index):
        async def scenario():
            service = QueryService(index)
            lock = asyncio.Lock()
            batcher = MicroBatcher(
                service, lock=lock, window=60.0, max_batch=4, enabled=True
            )
            # With a one-minute window, only the max-batch trigger can flush.
            results = await asyncio.wait_for(
                asyncio.gather(
                    *(batcher.submit(service.validate([0, 1, 0, 0])) for _ in range(4))
                ),
                timeout=5.0,
            )
            assert [origin for _, origin, _ in results].count("miss") == 1
            assert batcher.stats()["largest_batch"] == 4

        run(scenario())

    def test_poisoned_batch_falls_back_per_request(self, index):
        """A request that fails in execution fails alone, not its neighbours."""

        async def scenario():
            service = QueryService(index)
            lock = asyncio.Lock()
            batcher = MicroBatcher(
                service, lock=lock, window=0.01, max_batch=8, enabled=True
            )
            from repro.indexes import Query

            good = Query([0, 1, 0, 0])
            # Bypasses admission validation on purpose: an invalid query
            # reaching the flush must only fail its own waiter.
            bad = Query([0.9, 1, 0, 0])
            results = await asyncio.gather(
                batcher.submit(good), batcher.submit(bad), return_exceptions=True
            )
            assert isinstance(results[1], PatternError)
            result, _, _ = results[0]
            assert result.positions == index.locate([0, 1, 0, 0])

        run(scenario())


class TestRobustness:
    def test_rate_limiting_answers_429_with_retry_after(self, index):
        async def scenario():
            server, service, client, _ = await started_server(
                index, rate=1.0, burst=2.0
            )
            statuses = []
            for _ in range(4):
                response = await client.request(
                    "POST", "/query", {"pattern": [0, 1, 0, 0]}
                )
                statuses.append(response.status)
                if response.status == 429:
                    assert int(response.headers["retry-after"]) >= 1
            assert statuses.count(200) == 2 and statuses.count(429) == 2
            assert server.server_stats()["rate_limited"] == 2
            health = await client.request("GET", "/healthz")
            assert health.status == 200  # introspection is never rate limited
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_load_shedding_beyond_queue_limit(self, index):
        async def scenario():
            # A long window parks admitted requests in flight, so concurrent
            # requests beyond the queue limit must be shed with 429.
            server, service, client, address = await started_server(
                index, batch_window=0.25, max_batch=1024, queue_limit=3
            )
            await client.close()

            async def one_request():
                worker_client = await AsyncHttpClient.connect(*address)
                response = await worker_client.request(
                    "POST", "/query", {"pattern": [0, 1, 0, 0]}
                )
                await worker_client.close()
                return response

            responses = await asyncio.gather(*(one_request() for _ in range(10)))
            statuses = [response.status for response in responses]
            assert statuses.count(429) >= 1
            assert statuses.count(200) >= 3
            assert set(statuses) <= {200, 429}
            shed_responses = [r for r in responses if r.status == 429]
            assert all(r.headers.get("retry-after") == "1" for r in shed_responses)
            assert server.server_stats()["shed"] == statuses.count(429)
            await server.shutdown()

        run(scenario())

    def test_request_timeout_answers_503(self, index):
        async def scenario():
            server, service, client, _ = await started_server(
                index, batch_window=0.5, max_batch=1024, request_timeout=0.02
            )
            response = await client.request(
                "POST", "/query", {"pattern": [0, 1, 0, 0]}
            )
            assert response.status == 503
            assert "timed out" in response.json()["error"]
            assert server.server_stats()["timeouts"] == 1
            await client.close()
            await server.shutdown()

        run(scenario())

    def test_graceful_shutdown_drains_inflight_requests(self, index):
        async def scenario():
            # Requests parked in a long batch window are still answered when
            # shutdown flushes the batcher instead of dropping them.
            server, service, client, address = await started_server(
                index, batch_window=30.0, max_batch=1024
            )
            await client.close()

            async def one_request():
                worker_client = await AsyncHttpClient.connect(*address)
                response = await worker_client.request(
                    "POST", "/query", {"pattern": [0, 1, 0, 0]}
                )
                await worker_client.close()
                return response

            tasks = [asyncio.create_task(one_request()) for _ in range(5)]
            await asyncio.sleep(0.05)  # let them all hit the batch window
            report = await server.shutdown(drain=True)
            responses = await asyncio.gather(*tasks)
            assert all(response.status == 200 for response in responses)
            assert report["drained"] == 5
            assert report["drain_expired"] is False

        run(scenario())

    def test_malformed_http_gets_an_error_response(self, index):
        async def scenario():
            server, service, client, address = await started_server(index)
            await client.close()
            reader, writer = await asyncio.open_connection(*address)
            writer.write(b"NOT-HTTP\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
            await server.shutdown()

        run(scenario())


# -- metrics kernel ------------------------------------------------------------


class TestMetrics:
    def test_histogram_buckets_and_quantiles(self):
        histogram = Histogram((0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.002, 0.05, 5.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(0.99) == float("inf")

    def test_registry_renders_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("widgets_total", "Widgets", kind="a").inc()
        registry.counter("widgets_total", kind="b").inc(2)
        registry.gauge("depth", lambda: 3, "Depth")
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = registry.render()
        assert '# TYPE repro_widgets_total counter' in text
        assert 'repro_widgets_total{kind="a"} 1' in text
        assert 'repro_widgets_total{kind="b"} 2' in text
        assert 'repro_depth 3' in text
        assert 'repro_lat_bucket{le="2"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert 'repro_lat_count 1' in text

    def test_conflicting_metric_kind_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.histogram("thing")

    def test_rate_limiter_recycles_oldest_client(self):
        clock = iter(float(i) for i in range(1000))
        limiter = RateLimiter(1.0, 1.0, max_clients=2, clock=lambda: next(clock))
        assert limiter.acquire("a") == 0.0
        assert limiter.acquire("b") == 0.0
        assert limiter.acquire("c") == 0.0  # evicts a
        assert len(limiter._buckets) == 2


# -- the concurrency soak (mixed traffic + mid-stream update) ------------------


class TestConcurrencySoak:
    def test_soak_with_midstream_update(self, source):
        # A fresh index per run: the update below mutates the shared source.
        soak_source = random_source(60, 2, 29)
        soak_index = build_index(soak_source, Z, kind="MWSA", ell=ELL)
        valid_pool = [
            list(pattern)
            for pattern in sample_valid_patterns(soak_source, Z, m=ELL, count=6, seed=5)
        ]
        invalid_pool = [
            [0.9, 1, 0, 0], [9, 0, 1, 1], [0], [0, 1, 0, -2], "", [0.0, None, 1, 1],
        ]
        oracle_before = {
            json.dumps(pattern): brute_force_occurrences(soak_source, pattern, Z)
            for pattern in valid_pool
        }
        update = [{"position": 2, "distribution": {"A": 0.5, "B": 0.5}}]

        async def scenario():
            service = QueryService(soak_index)
            server = HttpServer(service, batch_window=0.001, max_batch=32)
            address = await server.start("127.0.0.1", 0)
            answers: list[tuple[str, list]] = []
            statuses: list[int] = []

            async def client_worker(worker: int):
                client = await AsyncHttpClient.connect(*address)
                for step in range(24):
                    if worker == 0 and step == 12:
                        response = await client.request(
                            "POST", "/update", {"updates": update}
                        )
                        statuses.append(response.status)
                        continue
                    if step % 4 == 3:
                        pattern = invalid_pool[(worker + step) % len(invalid_pool)]
                        response = await client.request(
                            "POST", "/query", {"pattern": pattern}
                        )
                        statuses.append(response.status)
                        assert response.status == 400
                    else:
                        pattern = valid_pool[(worker + step) % len(valid_pool)]
                        response = await client.request(
                            "POST", "/query", {"pattern": pattern}
                        )
                        statuses.append(response.status)
                        assert response.status == 200
                        answers.append(
                            (json.dumps(pattern), response.json()["positions"])
                        )
                await client.close()

            await asyncio.gather(*(client_worker(worker) for worker in range(6)))
            # Post-run oracle over the mutated source; every in-run answer
            # must match the pre- or post-update truth, final answers the
            # post-update truth exactly.
            oracle_after = {
                json.dumps(pattern): brute_force_occurrences(soak_source, pattern, Z)
                for pattern in valid_pool
            }
            client = await AsyncHttpClient.connect(*address)
            for pattern in valid_pool:
                response = await client.request(
                    "POST", "/query", {"pattern": pattern}
                )
                assert response.json()["positions"] == (
                    oracle_after[json.dumps(pattern)]
                )
            stats_response = await client.request("GET", "/stats")
            payload = stats_response.json()
            await client.close()
            await server.shutdown()
            return answers, statuses, payload

        answers, statuses, payload = run(scenario())
        assert all(status in (200, 400) for status in statuses)  # never a 5xx
        oracle_after = {
            json.dumps(pattern): brute_force_occurrences(soak_source, pattern, Z)
            for pattern in valid_pool
        }
        for key, positions in answers:
            assert positions in (oracle_before[key], oracle_after[key])
        service_stats = payload["service"]
        assert service_stats["queries"] == (
            service_stats["hits"] + service_stats["misses"]
        )
        assert service_stats["updates"] == 1
        server_stats = payload["server"]
        assert server_stats["shed"] == 0 and server_stats["timeouts"] == 0


# -- CLI wiring ---------------------------------------------------------------


class TestServeHttpCli:
    def test_parser_accepts_serve_http(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve-http", "--dataset", "SARS", "--z", "4", "--ell", "8",
             "--port", "0", "--rate-limit", "50", "--no-batching"]
        )
        assert arguments.command == "serve-http"
        assert arguments.port == 0
        assert arguments.rate_limit == 50.0
        assert arguments.no_batching is True

    def test_parser_serve_http_worker_flags(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve-http", "--dataset", "SARS", "--z", "4", "--ell", "8",
             "--shards", "2", "--build-workers", "2", "--workers", "3",
             "--warm-log", "patterns.log", "--warm-top", "10",
             "--tenant-class", "gold=100:200", "--tenant-class", "default=5"]
        )
        assert arguments.workers == 3           # serving processes
        assert arguments.build_workers == 2     # shard-build parallelism
        assert arguments.warm_log == "patterns.log"
        assert arguments.warm_top == 10
        assert arguments.tenant_class == ["gold=100:200", "default=5"]

    def test_parse_tenant_classes(self):
        from repro.cli import _parse_tenant_classes

        classes = _parse_tenant_classes(["gold=100:200", "free=2", "off=0"])
        assert classes["gold"] == (100.0, 200.0)
        assert classes["free"] == (2.0, 2.0)   # burst defaults to the rate
        assert classes["off"] == (0.0, 1.0)    # rate 0 = unlimited
        assert _parse_tenant_classes(None) is None
        assert _parse_tenant_classes([]) is None
        from repro.errors import ReproError

        for bad in ("noequals", "=5", "gold=abc", "gold=1:x"):
            with pytest.raises(ReproError):
                _parse_tenant_classes([bad])

    def test_load_warm_patterns(self, tmp_path):
        from repro.cli import _load_warm_patterns

        log = tmp_path / "warm.log"
        log.write_text(
            "ACGT\n"
            "\n"
            '{"pattern": [0, 1, 0, 0], "mode": "locate"}\n'
            "[1, 0, 1, 1]\n"
            "{broken json\n"
            '{"no_pattern_field": 1}\n'
        )
        patterns = _load_warm_patterns(str(log))
        assert patterns == ["ACGT", [0, 1, 0, 0], [1, 0, 1, 1]]
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            _load_warm_patterns(str(tmp_path / "missing.log"))


# -- per-tenant quota classes -------------------------------------------------


class TestTenantQuotas:
    def test_limiter_tiers_and_default_class(self):
        now = [0.0]
        limiter = RateLimiter(
            0.0,
            classes={"gold": (1000.0, 3.0), "default": (1000.0, 1.0)},
            clock=lambda: now[0],
        )
        # gold burst 3: three immediate requests pass, the fourth waits.
        waits = [limiter.acquire("c", tenant="gold") for _ in range(4)]
        assert waits[:3] == [0.0, 0.0, 0.0] and waits[3] > 0.0
        # an unknown tenant falls back to the 'default' class (burst 1).
        assert limiter.acquire("c", tenant="mystery") == 0.0
        assert limiter.acquire("c", tenant="mystery") > 0.0
        # tenants are isolated buckets: another tenant still has its burst.
        assert limiter.acquire("c", tenant="other") == 0.0

    def test_limiter_unlimited_class_and_per_client_fallback(self):
        now = [0.0]
        limiter = RateLimiter(
            1.0, 1.0, classes={"free": (0.0, 1.0)}, clock=lambda: now[0]
        )
        # rate 0 in a class means unlimited for that tenant.
        assert all(limiter.acquire("c", tenant="free") == 0.0 for _ in range(50))
        # no tenant header: the per-client bucket still applies.
        assert limiter.acquire("client-1") == 0.0
        assert limiter.acquire("client-1") > 0.0

    def test_http_429_accounting_per_tenant(self, index):
        async def scenario():
            server, service, client, _ = await started_server(
                index,
                # default burst 1 with a slow refill: the second request
                # inside the same test run is reliably rejected.
                tenant_classes={"gold": (1000.0, 100.0), "default": (0.5, 1.0)},
            )
            payload = {"pattern": [0, 1, 0, 0]}
            for _ in range(5):
                response = await client.request(
                    "POST", "/query", payload, headers={"X-Tenant": "gold"}
                )
                assert response.status == 200
            # the default class has burst 1: the second request is rejected.
            first = await client.request(
                "POST", "/query", payload, headers={"X-Tenant": "pleb"}
            )
            second = await client.request(
                "POST", "/query", payload, headers={"X-Tenant": "pleb"}
            )
            assert first.status == 200
            assert second.status == 429
            assert "retry-after" in second.headers
            stats = server.server_stats()
            assert stats["rate_limited_by_tenant"] == {"pleb": 1}
            metrics = await client.request("GET", "/metrics")
            assert 'repro_http_rate_limited_total{tenant="pleb"} 1' in metrics.text
            await client.close()
            await server.shutdown()

        run(scenario())


# -- generation-tagged responses ----------------------------------------------


class TestGenerationTags:
    def test_query_and_batch_responses_carry_generation(self, index):
        async def scenario():
            server, service, client, _ = await started_server(index)
            pattern = [0, 1, 0, 0]
            first = await client.request("POST", "/query", {"pattern": pattern})
            assert first.json()["generation"] == 0
            batch = await client.request(
                "POST", "/query/batch", {"queries": [pattern]}
            )
            assert batch.json()["generation"] == 0
            update = await client.request(
                "POST",
                "/update",
                {"updates": [{"position": 1, "distribution": {"A": 0.5, "B": 0.5}}]},
            )
            assert update.status == 200
            after = await client.request("POST", "/query", {"pattern": pattern})
            assert after.json()["generation"] == 1
            batch_after = await client.request(
                "POST", "/query/batch", {"queries": [pattern]}
            )
            assert batch_after.json()["generation"] == 1
            await client.close()
            await server.shutdown()

        run(scenario())
