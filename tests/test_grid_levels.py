"""Numpy-level range tree: parity with brute force and the old merge tree.

``RangeTree2D`` builds its levels with one stable ``lexsort`` per level; the
report order must be *bit-identical* to the old list-based merge-sort tree
(stable bottom-up merges), not merely equal as sets — the minimizer grid
query feeds report output straight into candidate sets and the differential
suites compare ordered outputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.grid import BruteForceGrid, Grid2D, RangeTree2D


class OldMergeTree:
    """Faithful copy of the pre-array merge-sort tree (the PR-5 grid).

    Kept verbatim (per-node python lists, stable pairwise merges, the same
    canonical-node iteration) as the report-*order* oracle for the lexsort
    level arrays.
    """

    def __init__(self, points):
        points = sorted((int(x), int(y)) for x, y in points)
        self._points = points
        self._xs = [x for x, _ in points]
        size = 1
        while size < max(1, len(points)):
            size *= 2
        self._size = size
        self._ys = [np.empty(0, dtype=np.int64)] * (2 * size)
        self._idx = [np.empty(0, dtype=np.int64)] * (2 * size)
        for position, (_, y) in enumerate(points):
            leaf = size + position
            self._ys[leaf] = np.array([y], dtype=np.int64)
            self._idx[leaf] = np.array([position], dtype=np.int64)
        for node in range(size - 1, 0, -1):
            left, right = self._ys[2 * node], self._ys[2 * node + 1]
            merged_y = np.concatenate([left, right])
            merged_idx = np.concatenate([self._idx[2 * node], self._idx[2 * node + 1]])
            order = np.argsort(merged_y, kind="stable")
            self._ys[node] = merged_y[order]
            self._idx[node] = merged_idx[order]

    def _canonical_nodes(self, lo, hi):
        nodes = []
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo //= 2
            hi //= 2
        return nodes

    def report(self, x_lo, x_hi, y_lo, y_hi):
        from bisect import bisect_left

        lo = bisect_left(self._xs, x_lo)
        hi = bisect_left(self._xs, x_hi)
        if lo >= hi or y_lo >= y_hi:
            return []
        results = []
        for node in self._canonical_nodes(lo, hi):
            ys = self._ys[node]
            start = int(np.searchsorted(ys, y_lo, side="left"))
            stop = int(np.searchsorted(ys, y_hi, side="left"))
            for position in self._idx[node][start:stop]:
                results.append(self._points[int(position)])
        return results


points_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40)
    ),
    max_size=100,
)
rect_strategy = st.tuples(
    st.integers(min_value=0, max_value=42),
    st.integers(min_value=0, max_value=42),
    st.integers(min_value=0, max_value=42),
    st.integers(min_value=0, max_value=42),
)


class TestLevelArrayParity:
    @settings(max_examples=80, deadline=None)
    @given(points=points_strategy, rect=rect_strategy)
    def test_matches_brute_force(self, points, rect):
        x_lo, x_hi, y_lo, y_hi = rect
        tree = RangeTree2D(points)
        brute = BruteForceGrid(points)
        assert sorted(tree.report(x_lo, x_hi, y_lo, y_hi)) == sorted(
            brute.report(x_lo, x_hi, y_lo, y_hi)
        )
        assert tree.count(x_lo, x_hi, y_lo, y_hi) == brute.count(x_lo, x_hi, y_lo, y_hi)

    @settings(max_examples=40, deadline=None)
    @given(points=points_strategy, rect=rect_strategy)
    def test_report_order_matches_old_merge_tree(self, points, rect):
        x_lo, x_hi, y_lo, y_hi = rect
        tree = RangeTree2D(points)
        expected = OldMergeTree(points).report(x_lo, x_hi, y_lo, y_hi)
        assert tree.report(x_lo, x_hi, y_lo, y_hi) == expected

    def test_permutation_pairing(self):
        rng = np.random.default_rng(2)
        permutation = rng.permutation(128)
        points = [(int(x), int(y)) for x, y in enumerate(permutation)]
        tree = RangeTree2D(points)
        brute = BruteForceGrid(points)
        for _ in range(50):
            x_lo, x_hi = sorted(rng.integers(0, 129, size=2))
            y_lo, y_hi = sorted(rng.integers(0, 129, size=2))
            assert sorted(tree.report(x_lo, x_hi, y_lo, y_hi)) == sorted(
                brute.report(x_lo, x_hi, y_lo, y_hi)
            )


class TestArrayRoundTrip:
    def test_from_arrays_round_trip(self):
        rng = np.random.default_rng(8)
        points = [(int(x), int(y)) for x, y in rng.integers(0, 50, size=(60, 2))]
        tree = RangeTree2D(points)
        arrays = tree.to_arrays()
        clone = RangeTree2D.from_arrays(
            arrays["points"], arrays["level_ys"], arrays["level_idx"]
        )
        assert len(clone) == len(tree)
        for _ in range(30):
            x_lo, x_hi = sorted(rng.integers(0, 51, size=2))
            y_lo, y_hi = sorted(rng.integers(0, 51, size=2))
            assert clone.report(x_lo, x_hi, y_lo, y_hi) == tree.report(
                x_lo, x_hi, y_lo, y_hi
            )

    def test_grid2d_from_arrays_preserves_limit(self):
        points = [(i, i) for i in range(10)]
        tree = RangeTree2D(points)
        arrays = tree.to_arrays()
        grid = Grid2D.from_arrays(
            arrays["points"], arrays["level_ys"], arrays["level_idx"],
            brute_force_limit=3,
        )
        assert grid.backend_name == "range_tree"
        assert grid.brute_force_limit == 3
        assert len(grid) == 10


class TestBruteForceLimit:
    def test_default_limit_exposed(self):
        grid = Grid2D([(0, 0)])
        assert grid.brute_force_limit == Grid2D.BRUTE_FORCE_LIMIT == 64

    def test_boundary_selection(self):
        points = [(i, i) for i in range(10)]
        at_limit = Grid2D(points, brute_force_limit=10)
        above_limit = Grid2D(points, brute_force_limit=9)
        assert at_limit.backend_name == "brute"
        assert above_limit.backend_name == "range_tree"
        # Both backends answer identically at the boundary.
        for x_lo, x_hi, y_lo, y_hi in ((0, 10, 0, 10), (2, 7, 3, 9), (5, 5, 0, 10)):
            assert sorted(at_limit.report(x_lo, x_hi, y_lo, y_hi)) == sorted(
                above_limit.report(x_lo, x_hi, y_lo, y_hi)
            )
            assert at_limit.count(x_lo, x_hi, y_lo, y_hi) == above_limit.count(
                x_lo, x_hi, y_lo, y_hi
            )

    def test_limit_plumbs_through_build_and_pipeline(self):
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString
        from repro.indexes.registry import ConstructionPipeline, build_index

        rng = np.random.default_rng(31)
        base = rng.integers(0, 4, size=300)
        matrix = np.full((300, 4), 0.03)
        matrix[np.arange(300), base] = 0.91
        source = WeightedString(matrix, Alphabet("ACGT"))
        default = build_index(source, 4.0, kind="MWST-G", ell=6)
        forced_tree = build_index(
            source, 4.0, kind="MWST-G", ell=6, grid_brute_force_limit=0
        )
        forced_brute = build_index(
            source, 4.0, kind="MWST-G", ell=6, grid_brute_force_limit=10**9
        )
        assert forced_tree.grid.backend_name == "range_tree" or len(forced_tree.grid) == 0
        assert forced_brute.grid.backend_name == "brute"
        patterns = [[int(c) for c in base[start : start + 8]] for start in range(0, 280, 19)]
        for pattern in patterns:
            expected = default.locate(pattern)
            assert forced_tree.locate(pattern) == expected
            assert forced_brute.locate(pattern) == expected
        pipeline = ConstructionPipeline(
            source, 4.0, ell=6, grid_brute_force_limit=0
        )
        piped = pipeline.build("MWSA-G")
        assert piped.grid.brute_force_limit == 0
        for pattern in patterns:
            assert piped.locate(pattern) == default.locate(pattern)
