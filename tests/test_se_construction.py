"""Tests for repro.indexes.se_construction (Section 4, MWST-SE)."""

import random

import pytest

from repro.core.heavy import max_mismatches
from repro.errors import ConstructionError
from repro.indexes import brute_force_occurrences
from repro.indexes.se_construction import (
    SpaceEfficientMWST,
    _MinSegmentTree,
    build_index_data_space_efficient,
)
from repro.sampling.minimizers import MinimizerScheme


def _key(order: int, tie: int) -> int:
    """Packed (order value, tie) key, mirroring _ExtendedFactorDFS._pack_key."""
    return (order << 32) | tie


class TestMinSegmentTree:
    def test_point_updates_and_queries(self):
        tree = _MinSegmentTree(8)
        tree.set(2, _key(5, 2))
        tree.set(5, _key(3, 5))
        tree.set(7, _key(3, 7))
        assert tree.range_min(0, 8) == _key(3, 5)
        assert tree.range_min(0, 5) == _key(5, 2)
        assert tree.range_min(6, 8) == _key(3, 7)

    def test_clear_restores_sentinel(self):
        tree = _MinSegmentTree(4)
        tree.set(1, _key(1, 1))
        tree.clear(1)
        assert tree.range_min(0, 4) == tree._SENTINEL

    def test_empty_range(self):
        tree = _MinSegmentTree(4)
        assert tree.range_min(2, 2) == tree._SENTINEL

    def test_tie_breaking_prefers_smaller_key(self):
        tree = _MinSegmentTree(4)
        tree.set(0, _key(7, 3))
        tree.set(1, _key(7, 1))
        assert tree.range_min(0, 4) == _key(7, 1)

    def test_bulk_fill_matches_point_updates(self):
        bulk = _MinSegmentTree(6)
        stepwise = _MinSegmentTree(6)
        keys = [_key(order, tie) for tie, order in enumerate((9, 4, 6, 2, 8, 5))]
        bulk.bulk_fill(keys)
        for position, key in enumerate(keys):
            stepwise.set(position, key)
        for lo in range(6):
            for hi in range(lo, 7):
                assert bulk.range_min(lo, hi) == stepwise.range_min(lo, hi)


class TestSpaceEfficientData:
    def test_counters_and_no_pairs(self, small_genomic_string):
        data, counters = build_index_data_space_efficient(small_genomic_string, 8, 16)
        assert data.pairs is None
        assert data.construction == "space_efficient"
        assert counters["forward_leaves"] == len(data.forward)
        assert counters["forward_nodes"] > 0

    def test_leaves_respect_lemma3_on_solid_part(self, paper_example):
        data, _ = build_index_data_space_efficient(paper_example, 4, 3)
        bound = max_mismatches(4)
        for collection in (data.forward, data.backward):
            for leaf in collection:
                assert leaf.mismatch_count() <= bound

    def test_anchor_positions_are_consistent(self, paper_example):
        data, _ = build_index_data_space_efficient(paper_example, 4, 3)
        n = len(paper_example)
        for leaf in data.forward:
            assert leaf.anchor == leaf.position
            assert leaf.length == n - leaf.position
        for leaf in data.backward:
            assert leaf.anchor == n - 1 - leaf.position
            assert leaf.length == leaf.position + 1

    def test_minimizer_positions_match_explicit_construction(self, paper_example):
        from repro.indexes import build_index_data_from_estimation

        scheme = MinimizerScheme(3, 2, k=2, order="lexicographic")
        explicit = build_index_data_from_estimation(paper_example, 4, 3, scheme=scheme)
        space_efficient, _ = build_index_data_space_efficient(
            paper_example, 4, 3, scheme=scheme
        )
        explicit_positions = {leaf.position for leaf in explicit.forward}
        se_positions = {leaf.position for leaf in space_efficient.forward}
        assert explicit_positions == se_positions

    def test_invalid_ell_rejected(self, paper_example):
        with pytest.raises(ConstructionError):
            build_index_data_space_efficient(paper_example, 4, 0)

    def test_node_budget_guard(self, small_genomic_string):
        with pytest.raises(ConstructionError):
            build_index_data_space_efficient(small_genomic_string, 8, 8, max_nodes=3)

    def test_string_shorter_than_ell_yields_no_leaves(self, paper_example):
        data, _ = build_index_data_space_efficient(paper_example, 4, 10)
        assert len(data.forward) == 0 and len(data.backward) == 0


class TestSpaceEfficientIndex:
    def test_queries_match_oracle(self, random_weighted_string_factory):
        rng = random.Random(5)
        ws = random_weighted_string_factory(28, sigma=3, uncertain_fraction=0.7, seed=9)
        z, ell = 8, 4
        index = SpaceEfficientMWST.build(ws, z, ell)
        for _ in range(40):
            m = rng.randint(ell, 8)
            start = rng.randrange(len(ws) - m + 1)
            pattern = [
                int(ws.matrix[start + offset].argmax())
                if rng.random() < 0.8
                else rng.randrange(ws.sigma)
                for offset in range(m)
            ]
            assert index.locate(pattern) == brute_force_occurrences(ws, pattern, z)

    def test_stats_record_dfs_counters(self, small_genomic_string):
        index = SpaceEfficientMWST.build(small_genomic_string, 8, 16)
        assert index.stats.counters["forward_nodes"] > 0
        assert index.stats.counters["backward_nodes"] > 0
        assert index.stats.index_size_bytes > 0

    def test_construction_space_grows_slowly_with_z(self, small_genomic_string):
        low = SpaceEfficientMWST.build(small_genomic_string, 4, 16)
        high = SpaceEfficientMWST.build(small_genomic_string, 32, 16)
        # The z-estimation is never materialised, so the footprint is far from
        # proportional to z (it only grows through the sampled leaves).
        assert (
            high.stats.construction_space_bytes
            < 4 * low.stats.construction_space_bytes
        )
