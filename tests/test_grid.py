"""Tests for repro.geometry.grid (2D range reporting, Lemma 7 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.grid import BruteForceGrid, Grid2D, RangeTree2D


points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)),
    max_size=80,
)
rectangle_strategy = st.tuples(
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
)


class TestBackendsAgree:
    @settings(max_examples=60, deadline=None)
    @given(points=points_strategy, rectangle=rectangle_strategy)
    def test_range_tree_matches_brute_force(self, points, rectangle):
        x_lo, x_hi, y_lo, y_hi = rectangle
        tree = RangeTree2D(points)
        brute = BruteForceGrid(points)
        assert sorted(tree.report(x_lo, x_hi, y_lo, y_hi)) == sorted(
            brute.report(x_lo, x_hi, y_lo, y_hi)
        )
        assert tree.count(x_lo, x_hi, y_lo, y_hi) == brute.count(x_lo, x_hi, y_lo, y_hi)

    def test_permutation_points(self):
        # The paper's grid pairs two permutations of [1, N].
        permutation = [3, 0, 2, 1, 4]
        points = list(enumerate(permutation))
        grid = Grid2D(points, backend="range_tree")
        assert sorted(grid.report(0, 5, 0, 5)) == sorted(points)
        assert grid.count(1, 4, 0, 3) == len(
            [(x, y) for x, y in points if 1 <= x < 4 and 0 <= y < 3]
        )


class TestGridFacade:
    def test_auto_backend_small_uses_brute_force(self):
        grid = Grid2D([(0, 0), (1, 1)])
        assert isinstance(grid._backend, BruteForceGrid)

    def test_auto_backend_large_uses_range_tree(self):
        points = [(i, (7 * i) % 101) for i in range(101)]
        grid = Grid2D(points)
        assert isinstance(grid._backend, RangeTree2D)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Grid2D([], backend="quadtree")

    def test_len_and_nbytes(self):
        grid = Grid2D([(0, 1), (2, 3), (4, 5)], backend="range_tree")
        assert len(grid) == 3
        assert grid.nbytes() > 0

    def test_empty_grid(self):
        grid = Grid2D([])
        assert grid.report(0, 10, 0, 10) == []
        assert grid.count(0, 10, 0, 10) == 0

    def test_degenerate_rectangles(self):
        grid = Grid2D([(1, 1), (2, 2)], backend="range_tree")
        assert grid.report(2, 2, 0, 5) == []
        assert grid.report(0, 5, 3, 3) == []
