"""The optional compiled-kernel layer: detection, fallback, kernel parity.

``repro._kernels`` is Numba-or-nothing: when ``numba`` imports, the scalar
loops are jit-compiled; otherwise the *same functions* run as plain Python
over numpy arrays.  Everything here must therefore pass identically under
both engines, and the ``REPRO_KERNELS`` environment switch must force the
python engine on demand (the CI matrix leg runs the suite that way).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro._kernels import NUMBA, collect_stages, engine, record_stage, stage_timer
from repro._kernels.lcp import kasai
from repro._kernels.trie import trie_topology_arrays, trie_topology_python


class TestEngineDetection:
    def test_engine_matches_numba_flag(self):
        assert engine() == ("numba" if NUMBA else "python")

    def test_env_off_forces_python(self):
        code = (
            "from repro._kernels import NUMBA, engine; "
            "assert engine() == 'python' and not NUMBA"
        )
        environment = dict(os.environ, REPRO_KERNELS="off")
        root = os.path.join(os.path.dirname(__file__), "..", "src")
        environment["PYTHONPATH"] = root + os.pathsep + environment.get("PYTHONPATH", "")
        subprocess.run([sys.executable, "-c", code], check=True, env=environment)

    def test_env_require_fails_without_numba(self):
        code = "import repro._kernels"
        environment = dict(os.environ, REPRO_KERNELS="require")
        root = os.path.join(os.path.dirname(__file__), "..", "src")
        environment["PYTHONPATH"] = root + os.pathsep + environment.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code], env=environment, capture_output=True
        )
        try:
            import numba  # noqa: F401

            assert result.returncode == 0
        except ImportError:
            assert result.returncode != 0


class TestTrieTopologyTwins:
    @pytest.mark.parametrize("seed", range(6))
    def test_python_and_array_twins_agree(self, seed):
        import random

        rng = random.Random(seed)
        keys = sorted(
            {
                tuple(rng.randrange(3) for _ in range(rng.randint(1, 9)))
                for _ in range(rng.randint(1, 50))
            }
        )
        lengths = np.array([len(key) for key in keys], dtype=np.int64)
        lcps = np.zeros(len(keys), dtype=np.int64)
        for index in range(1, len(keys)):
            previous, current = keys[index - 1], keys[index]
            common = 0
            while (
                common < len(previous)
                and common < len(current)
                and previous[common] == current[common]
            ):
                common += 1
            lcps[index] = common
        python_arrays = trie_topology_python(lengths, lcps)
        kernel_arrays = trie_topology_arrays(lengths, lcps)
        for left, right in zip(python_arrays, kernel_arrays):
            np.testing.assert_array_equal(left, right)


class TestKasaiKernel:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_lcp(self, seed):
        rng = np.random.default_rng(seed)
        text = rng.integers(0, 4, size=int(rng.integers(2, 80))).astype(np.int64)
        sa = np.array(
            sorted(range(len(text)), key=lambda s: tuple(text[s:])), dtype=np.int64
        )
        ranks = np.empty(len(text), dtype=np.int64)
        ranks[sa] = np.arange(len(text))
        lcp = np.zeros(len(text), dtype=np.int64)
        kasai(text, sa, ranks, lcp)
        for rank in range(1, len(text)):
            a, b = text[sa[rank - 1] :], text[sa[rank] :]
            common = 0
            while common < len(a) and common < len(b) and a[common] == b[common]:
                common += 1
            assert lcp[rank] == common


class TestSegmentTreeKernel:
    def test_pair_kernel_matches_bigint_tree(self):
        import random

        from repro.indexes.se_construction import (
            _KernelMinSegmentTree,
            _MinSegmentTree,
        )

        rng = random.Random(41)
        for _ in range(60):
            n = rng.randint(1, 48)
            reference = _MinSegmentTree(n)
            kernel = _KernelMinSegmentTree(n)
            # Full-uint64 order halves: the packed keys exceed 64 bits.
            keys = [
                (rng.getrandbits(64) << 32) | rng.randrange(2**31) for _ in range(n)
            ]
            for position in range(n):
                if rng.random() < 0.3:
                    keys[position] = _MinSegmentTree._SENTINEL
            reference.bulk_fill(keys)
            kernel.bulk_fill(keys)
            for _ in range(25):
                if rng.random() < 0.5:
                    position = rng.randrange(n)
                    if rng.random() < 0.25:
                        reference.clear(position)
                        kernel.clear(position)
                    else:
                        key = (rng.getrandbits(64) << 32) | rng.randrange(2**31)
                        reference.set(position, key)
                        kernel.set(position, key)
                lo = rng.randint(0, n)
                hi = rng.randint(lo, n)
                assert reference.range_min(lo, hi) == kernel.range_min(lo, hi)


class TestStageTimers:
    def test_record_and_collect(self):
        collect_stages()  # drain
        record_stage("trie", 0.25)
        record_stage("trie", 0.5)
        record_stage("sa", 1.0)
        stages = collect_stages()
        assert stages == {"trie": 0.75, "sa": 1.0}
        assert collect_stages() == {}  # reset drained the accumulator

    def test_stage_timer_context(self):
        collect_stages()
        with stage_timer("grid"):
            pass
        stages = collect_stages()
        assert set(stages) == {"grid"}
        assert stages["grid"] >= 0.0

    def test_build_records_stages(self):
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString
        from repro.indexes.registry import build_index

        rng = np.random.default_rng(2)
        matrix = rng.dirichlet(np.ones(4), size=200)
        source = WeightedString(matrix, Alphabet("ACGT"))
        collect_stages()
        build_index(source, 4.0, kind="MWST", ell=6)
        assert "trie" in collect_stages()
        build_index(source, 4.0, kind="WSA")
        assert "sa" in collect_stages()
