"""Tests for repro.strings.suffix_array."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.matching import find_occurrences
from repro.strings.suffix_array import (
    generalized_suffix_array,
    rank_array,
    suffix_array,
    suffix_array_interval,
)


def brute_suffix_array(codes):
    return sorted(range(len(codes)), key=lambda i: codes[i:])


class TestSuffixArray:
    def test_empty_and_singleton(self):
        assert list(suffix_array([])) == []
        assert list(suffix_array([7])) == [0]

    def test_banana(self):
        codes = [1, 0, 2, 0, 2, 0]  # "banana" with a<b<n coded 0<1<2
        assert list(suffix_array(codes)) == brute_suffix_array(codes)

    def test_all_equal_letters(self):
        codes = [3] * 8
        assert list(suffix_array(codes)) == list(range(7, -1, -1))

    def test_rank_array_is_inverse(self):
        codes = [2, 0, 1, 0, 2, 1, 0]
        sa = suffix_array(codes)
        ranks = rank_array(sa)
        assert all(sa[ranks[i]] == i for i in range(len(codes)))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=40))
    def test_matches_brute_force(self, codes):
        assert list(suffix_array(codes)) == brute_suffix_array(codes)

    def test_large_codes_are_supported(self):
        codes = [10_000, 5, 99_999, 5, 10_000]
        assert list(suffix_array(codes)) == brute_suffix_array(codes)


class TestPatternInterval:
    @settings(max_examples=40, deadline=None)
    @given(
        codes=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=30),
        pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=4),
    )
    def test_interval_matches_naive_occurrences(self, codes, pattern):
        sa = suffix_array(codes)
        lo, hi = suffix_array_interval(codes, sa, pattern)
        from_interval = sorted(int(sa[rank]) for rank in range(lo, hi))
        assert from_interval == find_occurrences(codes, pattern)

    def test_empty_pattern_interval_is_everything(self):
        codes = [0, 1, 0]
        sa = suffix_array(codes)
        assert suffix_array_interval(codes, sa, []) == (0, 3)


class TestGeneralizedSuffixArray:
    def test_concatenation_layout(self):
        text, sa, which, offset = generalized_suffix_array([[0, 1], [1]])
        assert list(text) == [1, 2, 0, 2, 0]
        assert list(which) == [0, 0, -1, 1, -1]
        assert list(offset) == [0, 1, -1, 0, -1]
        assert sorted(sa) == list(range(5))

    def test_empty_collection(self):
        text, sa, which, offset = generalized_suffix_array([])
        assert len(text) == len(sa) == len(which) == len(offset) == 0

    def test_positions_map_back(self):
        strings = [[0, 1, 2], [2, 1], [0]]
        text, sa, which, offset = generalized_suffix_array(strings)
        for position in range(len(text)):
            j, i = int(which[position]), int(offset[position])
            if j >= 0:
                assert strings[j][i] + 1 == text[position]
            else:
                assert text[position] == 0
