"""Cross-variant correctness tests for MWST / MWSA / MWST-G / MWSA-G / MWST-SE."""

import random

import pytest

from repro.core import build_z_estimation
from repro.errors import ConstructionError, PatternError
from repro.indexes import (
    GridMinimizerWSA,
    GridMinimizerWST,
    MinimizerWSA,
    MinimizerWST,
    SpaceEfficientMWST,
    brute_force_occurrences,
    build_index,
    build_index_data_from_estimation,
)
from repro.sampling.minimizers import MinimizerScheme

ALL_MINIMIZER_CLASSES = [
    MinimizerWST,
    MinimizerWSA,
    GridMinimizerWST,
    GridMinimizerWSA,
    SpaceEfficientMWST,
]


def sample_patterns(ws, z, ell, rng, count=25):
    """Mixed workload: planted (mostly valid) patterns and random ones."""
    patterns = []
    n = len(ws)
    for _ in range(count):
        m = rng.randint(ell, min(n, ell + 5))
        start = rng.randrange(n - m + 1)
        pattern = []
        for offset in range(m):
            row = ws.matrix[start + offset]
            if rng.random() < 0.85:
                pattern.append(int(row.argmax()))
            else:
                pattern.append(rng.randrange(ws.sigma))
        patterns.append(pattern)
    return patterns


class TestPaperExample:
    @pytest.mark.parametrize("index_cls", ALL_MINIMIZER_CLASSES)
    def test_example7_queries(self, paper_example, index_cls):
        index = index_cls.build(paper_example, 4, 4)
        # The three patterns of Fig. 3 / Example 7.
        assert index.locate("AAAA") == [0]   # valid at position 1 (1-based)
        assert index.locate("BAAB") == []    # false positive of the grid, filtered
        assert index.locate("BABA") == []    # not in the z-estimation at all

    @pytest.mark.parametrize("index_cls", ALL_MINIMIZER_CLASSES)
    def test_minimum_pattern_length_enforced(self, paper_example, index_cls):
        index = index_cls.build(paper_example, 4, 4)
        assert index.minimum_pattern_length == 4
        with pytest.raises(PatternError):
            index.locate("AAA")


class TestCrossVariantEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_variants_match_brute_force(
        self, random_weighted_string_factory, seed
    ):
        rng = random.Random(100 + seed)
        ws = random_weighted_string_factory(
            30, sigma=3, uncertain_fraction=[0.3, 0.6, 0.9, 1.0][seed], seed=seed
        )
        z = [4, 8, 16, 8][seed]
        ell = [3, 4, 5, 4][seed]
        scheme = MinimizerScheme(ell, ws.sigma, order="random")
        estimation = build_z_estimation(ws, z)
        data = build_index_data_from_estimation(ws, z, ell, scheme=scheme, estimation=estimation)
        indexes = [
            MinimizerWST.build(ws, z, ell, data=data),
            MinimizerWSA.build(ws, z, ell, data=data),
            GridMinimizerWST.build(ws, z, ell, data=data),
            GridMinimizerWSA.build(ws, z, ell, data=data),
            SpaceEfficientMWST.build(ws, z, ell, scheme=scheme),
        ]
        for pattern in sample_patterns(ws, z, ell, rng):
            expected = brute_force_occurrences(ws, pattern, z)
            for index in indexes:
                assert index.locate(pattern) == expected, (index.name, pattern)

    def test_genomic_input(self, small_genomic_string):
        ws = small_genomic_string
        z, ell = 16, 16
        rng = random.Random(1)
        indexes = [
            MinimizerWSA.build(ws, z, ell),
            SpaceEfficientMWST.build(ws, z, ell),
        ]
        for pattern in sample_patterns(ws, z, ell, rng, count=12):
            expected = brute_force_occurrences(ws, pattern, z)
            for index in indexes:
                assert index.locate(pattern) == expected


class TestSharedData:
    def test_shared_data_must_match_ell(self, paper_example):
        data = build_index_data_from_estimation(paper_example, 4, 3)
        with pytest.raises(ConstructionError):
            MinimizerWSA.build(paper_example, 4, 4, data=data)

    def test_grid_variant_requires_pairs(self, paper_example):
        data = build_index_data_from_estimation(paper_example, 4, 3, keep_pairs=False)
        with pytest.raises(ConstructionError):
            GridMinimizerWSA.build(paper_example, 4, 3, data=data)

    def test_names(self, paper_example):
        assert MinimizerWST.name == "MWST"
        assert MinimizerWSA.name == "MWSA"
        assert GridMinimizerWST.name == "MWST-G"
        assert GridMinimizerWSA.name == "MWSA-G"
        assert SpaceEfficientMWST.name == "MWST-SE"


class TestSizeBehaviour:
    def test_minimizer_index_smaller_than_baseline(self, small_genomic_string):
        from repro.indexes import WeightedSuffixArray

        z, ell = 16, 24
        baseline = WeightedSuffixArray.build(small_genomic_string, z)
        minimizer = MinimizerWSA.build(small_genomic_string, z, ell)
        assert minimizer.stats.index_size_bytes < baseline.stats.index_size_bytes

    def test_size_decreases_with_ell(self, small_genomic_string):
        small_ell = MinimizerWSA.build(small_genomic_string, 8, 8)
        large_ell = MinimizerWSA.build(small_genomic_string, 8, 32)
        assert large_ell.stats.index_size_bytes <= small_ell.stats.index_size_bytes

    def test_grid_variant_slightly_larger(self, small_genomic_string):
        plain = MinimizerWSA.build(small_genomic_string, 8, 16)
        grid = GridMinimizerWSA.build(small_genomic_string, 8, 16)
        assert grid.stats.index_size_bytes >= plain.stats.index_size_bytes

    def test_tree_variant_larger_than_array(self, small_genomic_string):
        tree = MinimizerWST.build(small_genomic_string, 8, 16)
        array = MinimizerWSA.build(small_genomic_string, 8, 16)
        assert tree.stats.index_size_bytes > array.stats.index_size_bytes

    def test_se_construction_space_below_explicit(self, small_genomic_string):
        explicit = MinimizerWSA.build(small_genomic_string, 16, 16)
        space_efficient = SpaceEfficientMWST.build(small_genomic_string, 16, 16)
        assert (
            space_efficient.stats.construction_space_bytes
            < explicit.stats.construction_space_bytes
        )


class TestBuildIndexFacade:
    def test_build_by_name(self, paper_example):
        index = build_index(paper_example, 4, kind="MWSA", ell=4)
        assert index.locate("AAAA") == [0]

    def test_baseline_ignores_ell(self, paper_example):
        index = build_index(paper_example, 4, kind="WSA")
        assert index.locate("AAAA") == [0]

    def test_unknown_kind_rejected(self, paper_example):
        with pytest.raises(ConstructionError):
            build_index(paper_example, 4, kind="BWT")

    def test_minimizer_kind_requires_ell(self, paper_example):
        with pytest.raises(ConstructionError):
            build_index(paper_example, 4, kind="MWSA")

    def test_lazy_reexport_from_package_root(self):
        import repro

        assert repro.MinimizerWSA is MinimizerWSA
        with pytest.raises(AttributeError):
            repro.not_an_attribute
