"""Shared fixtures of the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running the tests without installing
    sys.path.insert(0, str(SOURCE_ROOT))

from repro import Alphabet, WeightedString  # noqa: E402
from repro.core import build_z_estimation  # noqa: E402


@pytest.fixture()
def paper_example() -> WeightedString:
    """The weighted string of the paper's Example 1 (length 6 over {A, B})."""
    return WeightedString.from_dicts(
        [
            {"A": 1.0},
            {"A": 0.5, "B": 0.5},
            {"A": 0.75, "B": 0.25},
            {"A": 0.8, "B": 0.2},
            {"A": 0.5, "B": 0.5},
            {"A": 0.25, "B": 0.75},
        ]
    )


@pytest.fixture()
def paper_estimation(paper_example):
    """A 4-estimation of the paper's Example 1."""
    return build_z_estimation(paper_example, 4)


def make_random_weighted_string(
    length: int,
    sigma: int,
    uncertain_fraction: float,
    rng: random.Random,
) -> WeightedString:
    """A reproducible random weighted string mixing certain and uncertain positions."""
    rows = []
    for _ in range(length):
        if rng.random() < uncertain_fraction:
            weights = [rng.choice([0, 1, 1, 2, 4]) for _ in range(sigma)]
            if sum(weights) == 0:
                weights[rng.randrange(sigma)] = 1
            total = sum(weights)
            rows.append({chr(65 + code): weights[code] / total for code in range(sigma)})
        else:
            rows.append({chr(65 + rng.randrange(sigma)): 1.0})
    alphabet = Alphabet([chr(65 + code) for code in range(sigma)])
    return WeightedString.from_dicts(rows, alphabet=alphabet)


@pytest.fixture()
def random_weighted_string_factory():
    """Factory fixture producing reproducible random weighted strings."""

    def factory(length: int, sigma: int = 3, uncertain_fraction: float = 0.5, seed: int = 0):
        return make_random_weighted_string(length, sigma, uncertain_fraction, random.Random(seed))

    return factory


@pytest.fixture()
def small_genomic_string():
    """A small genomic-style weighted string (certain backbone + sparse SNPs)."""
    from repro.datasets.genomes import efm_like

    return efm_like(600, seed=3).weighted_string
