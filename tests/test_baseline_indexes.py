"""Tests for the WST / WSA baselines and the property suffix structure."""

import itertools

import pytest

from repro.core import build_z_estimation
from repro.indexes import (
    PropertySuffixStructure,
    WeightedSuffixArray,
    WeightedSuffixTree,
    brute_force_occurrences,
)
from repro.errors import PatternError


@pytest.fixture()
def small_random(random_weighted_string_factory):
    return random_weighted_string_factory(25, sigma=3, uncertain_fraction=0.5, seed=11)


class TestPropertySuffixStructure:
    def test_entry_count(self, paper_example, paper_estimation):
        structure = PropertySuffixStructure(paper_estimation)
        assert structure.entry_count == 4 * 7

    def test_locate_matches_oracle(self, paper_example, paper_estimation):
        structure = PropertySuffixStructure(paper_estimation)
        for m in range(1, 5):
            for pattern in itertools.product(range(2), repeat=m):
                assert structure.locate(list(pattern)) == paper_example.occurrences(
                    list(pattern), 4
                )

    def test_report_valid_empty_interval(self, paper_estimation):
        structure = PropertySuffixStructure(paper_estimation)
        assert structure.report_valid(3, 3, 1) == []


class TestBaselines:
    @pytest.mark.parametrize("index_cls", [WeightedSuffixArray, WeightedSuffixTree])
    def test_paper_example_queries(self, paper_example, index_cls):
        index = index_cls.build(paper_example, 4)
        assert index.locate("AAAA") == [0]
        assert index.locate("BAAB") == []      # Example 8: probability below 1/4
        # AB is valid at positions 1, 4 and 5 of the paper (1-based): 0, 3, 4 here.
        assert index.locate("AB") == [0, 3, 4]

    @pytest.mark.parametrize("index_cls", [WeightedSuffixArray, WeightedSuffixTree])
    def test_matches_brute_force_on_random_input(self, small_random, index_cls):
        z = 8
        index = index_cls.build(small_random, z)
        for m in (1, 2, 3):
            for pattern in itertools.product(range(small_random.sigma), repeat=m):
                assert index.locate(list(pattern)) == brute_force_occurrences(
                    small_random, list(pattern), z
                )

    def test_shared_estimation_is_reused(self, paper_example):
        estimation = build_z_estimation(paper_example, 4)
        wsa = WeightedSuffixArray.build(paper_example, 4, estimation=estimation)
        wst = WeightedSuffixTree.build(paper_example, 4, estimation=estimation)
        assert wsa.locate("AAAA") == wst.locate("AAAA") == [0]

    def test_count_and_exists(self, paper_example):
        index = WeightedSuffixArray.build(paper_example, 4)
        assert index.count("AB") == 3
        assert index.exists("AAAA")
        assert not index.exists("BBBB")

    def test_empty_pattern_rejected(self, paper_example):
        index = WeightedSuffixArray.build(paper_example, 4)
        with pytest.raises(PatternError):
            index.locate("")

    def test_stats_are_populated(self, paper_example):
        wsa = WeightedSuffixArray.build(paper_example, 4)
        wst = WeightedSuffixTree.build(paper_example, 4)
        assert wsa.stats.index_size_bytes > 0
        assert wst.stats.index_size_bytes > wsa.stats.index_size_bytes
        assert wsa.stats.construction_space_bytes > 0
        assert wst.stats.counters["nodes"] > 0

    def test_wst_node_count_linear_in_nz(self, small_random):
        index = WeightedSuffixTree.build(small_random, 4)
        entries = index.stats.counters["entries"]
        assert index.node_count <= 2 * entries + 1

    def test_repr(self, paper_example):
        index = WeightedSuffixArray.build(paper_example, 4)
        assert "WeightedSuffixArray" in repr(index)

    def test_minimum_pattern_length_is_one(self, paper_example):
        assert WeightedSuffixArray.build(paper_example, 4).minimum_pattern_length == 1
