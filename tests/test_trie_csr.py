"""CSR compacted-trie parity: array construction vs the object builder.

The CSR re-encoding must be *bit-identical* to the original object trie —
same node set in the same pre-order, same child order, same terminal sets,
same ``descend`` / ``matching_keys`` answers — for every index variant and
across store round-trips.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.strings.trie import CompactedTrie, TrieNode, trie_implementation


def random_keys(rng: random.Random, count: int, sigma: int, max_len: int):
    """Sorted, deduplicated random keys plus their adjacent LCP array."""
    keys = sorted(
        {
            tuple(rng.randrange(sigma) for _ in range(rng.randint(1, max_len)))
            for _ in range(count)
        }
    )
    lcps = [0] * len(keys)
    for index in range(1, len(keys)):
        previous, current = keys[index - 1], keys[index]
        common = 0
        while (
            common < len(previous)
            and common < len(current)
            and previous[common] == current[common]
        ):
            common += 1
        lcps[index] = common
    return keys, lcps


def build_pair(keys, lcps):
    lengths = np.array([len(key) for key in keys], dtype=np.int64)
    lcp_array = np.array(lcps, dtype=np.int64)

    def letter(index: int, offset: int) -> int:
        return keys[index][offset]

    def bulk_letter(rows: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        return np.array(
            [keys[int(row)][int(offset)] for row, offset in zip(rows, offsets)],
            dtype=np.int64,
        )

    csr = CompactedTrie(lengths, lcp_array, letter, bulk_letter=bulk_letter)
    with trie_implementation("object"):
        obj = CompactedTrie(lengths, lcp_array, letter, bulk_letter=bulk_letter)
    return csr, obj


def assert_same_tree(a: TrieNode, b: TrieNode) -> None:
    assert a.depth == b.depth
    assert a.parent_depth == b.parent_depth
    assert a.edge_length == b.edge_length
    assert (a.lo, a.hi) == (b.lo, b.hi)
    assert a.terminal == b.terminal
    assert a.is_leaf() == b.is_leaf()
    assert list(a.children) == list(b.children)  # same child letters, same order
    for letter in a.children:
        assert_same_tree(a.children[letter], b.children[letter])


class TestStructuralParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_key_sets(self, seed):
        rng = random.Random(seed)
        keys, lcps = random_keys(rng, rng.randint(1, 60), rng.choice([2, 4, 26]), 12)
        csr, obj = build_pair(keys, lcps)
        assert csr.implementation == "csr"
        assert obj.implementation == "object"
        assert csr.node_count == obj.node_count
        assert csr.key_count == obj.key_count
        assert_same_tree(csr.root, obj.root)

    def test_empty_and_single(self):
        csr, obj = build_pair([], [])
        assert csr.node_count == obj.node_count == 1
        csr, obj = build_pair([(0, 1, 0)], [0])
        assert_same_tree(csr.root, obj.root)

    def test_iter_nodes_preorder_matches(self):
        rng = random.Random(99)
        keys, lcps = random_keys(rng, 40, 3, 10)
        csr, obj = build_pair(keys, lcps)
        csr_nodes = [(n.depth, n.lo, n.hi) for n in csr.iter_nodes()]
        obj_nodes = [(n.depth, n.lo, n.hi) for n in obj.iter_nodes()]
        assert csr_nodes == obj_nodes


class TestQueryParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_descend_and_matching_keys(self, seed):
        rng = random.Random(1000 + seed)
        sigma = rng.choice([2, 4])
        keys, lcps = random_keys(rng, rng.randint(1, 50), sigma, 10)
        csr, obj = build_pair(keys, lcps)
        patterns = [[]]
        for key in keys[:: max(1, len(keys) // 10)]:
            for cut in (1, len(key) // 2, len(key)):
                patterns.append(list(key[:cut]))
        patterns += [
            [rng.randrange(sigma) for _ in range(rng.randint(1, 12))] for _ in range(30)
        ]
        for pattern in patterns:
            assert csr.descend(pattern) == obj.descend(pattern), pattern
            assert list(csr.matching_keys(pattern)) == list(obj.matching_keys(pattern))

    def test_descend_after_view_materialisation(self):
        # Touching .root flips descend to the object walk; answers must agree.
        rng = random.Random(5)
        keys, lcps = random_keys(rng, 30, 2, 8)
        csr_a, _ = build_pair(keys, lcps)
        csr_b, _ = build_pair(keys, lcps)
        csr_b.root  # materialise the view on one copy only
        for key in keys:
            for cut in (1, len(key)):
                assert csr_a.descend(key[:cut]) == csr_b.descend(key[:cut])


class TestArrayRoundTrip:
    def test_to_from_arrays(self):
        rng = random.Random(7)
        keys, lcps = random_keys(rng, 45, 4, 9)
        csr, _ = build_pair(keys, lcps)
        arrays = csr.to_arrays()
        lengths = np.array([len(key) for key in keys], dtype=np.int64)
        clone = CompactedTrie.from_arrays(
            arrays, lengths, lambda index, offset: keys[index][offset]
        )
        assert clone.node_count == csr.node_count
        assert_same_tree(clone.root, csr.root)

    def test_to_arrays_object_mode_raises(self):
        keys, lcps = random_keys(random.Random(1), 5, 2, 4)
        _, obj = build_pair(keys, lcps)
        with pytest.raises(ValueError):
            obj.to_arrays()


class TestIndexVariantsUnderObjectTrie:
    """Every trie-using variant answers identically under both builders."""

    @pytest.mark.parametrize("kind", ["WST", "MWST", "MWST-G", "MWST-SE"])
    def test_variant_parity(self, kind):
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString
        from repro.indexes.registry import build_index

        rng = np.random.default_rng(21)
        base = rng.integers(0, 4, size=300)
        matrix = np.full((300, 4), 0.03)
        matrix[np.arange(300), base] = 0.91
        source = WeightedString(matrix, Alphabet("ACGT"))
        ell = None if kind == "WST" else 6
        csr_index = build_index(source, 4.0, kind=kind, ell=ell)
        with trie_implementation("object"):
            obj_index = build_index(source, 4.0, kind=kind, ell=ell)
        patterns = [[int(c) for c in base[start : start + 8]] for start in range(0, 280, 11)]
        patterns += [[int(c) for c in rng.integers(0, 4, size=8)] for _ in range(20)]
        for pattern in patterns:
            assert csr_index.locate(pattern) == obj_index.locate(pattern)

    def test_store_round_trip_under_both_builders(self, tmp_path):
        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString
        from repro.indexes.registry import build_index
        from repro.io.store import load_index, save_index

        rng = np.random.default_rng(3)
        base = rng.integers(0, 4, size=250)
        matrix = np.full((250, 4), 0.02)
        matrix[np.arange(250), base] = 0.94
        source = WeightedString(matrix, Alphabet("ACGT"))
        patterns = [[int(c) for c in base[start : start + 7]] for start in range(0, 200, 13)]
        for kind, ell in (("MWST", 6), ("WST", None)):
            fresh = build_index(source, 4.0, kind=kind, ell=ell)
            path = tmp_path / f"{kind}.idx"
            save_index(path, fresh)
            loaded = load_index(path)
            # Object-built indexes store no trie arrays but still round-trip.
            with trie_implementation("object"):
                object_fresh = build_index(source, 4.0, kind=kind, ell=ell)
            object_path = tmp_path / f"{kind}-object.idx"
            save_index(object_path, object_fresh)
            object_loaded = load_index(object_path)
            for pattern in patterns:
                expected = fresh.locate(pattern)
                assert loaded.locate(pattern) == expected
                assert object_loaded.locate(pattern) == expected
