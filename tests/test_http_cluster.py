"""Prefork multi-worker serving: aggregation, soak, crash recovery, SIGTERM.

Every test drives the real ``serve-http --workers N`` CLI in a subprocess —
the supervisor must never fork inside the pytest process.  Answers are
checked bit-identically against a brute-force oracle mirrored in the test:
the served store round-trips through a PWM file, so the test reads the same
file to hold exactly the source the cluster serves, and replays the same
updates locally to know the truth *per generation* (each response carries
the generation that produced it).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.datasets.patterns import sample_valid_patterns
from repro.indexes import build_index
from repro.indexes.base import brute_force_occurrences
from repro.io.pwm import read_pwm, write_pwm
from repro.service.protocol import parse_updates

Z = 4.0
ELL = 4
ROOT = Path(__file__).resolve().parent.parent

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="prefork serving needs os.fork"
)


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


@pytest.fixture(scope="module")
def served_store(tmp_path_factory):
    """A PWM file + a 2-shard directory store built from it via the CLI."""
    from repro.datasets.synthetic import sparse_uncertainty_string

    root = tmp_path_factory.mktemp("cluster-store")
    source = sparse_uncertainty_string(120, 4, delta=0.3, seed=23)
    pwm = root / "source.pwm"
    write_pwm(pwm, source)
    store = root / "store"
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "build", "--pwm", str(pwm),
         "--z", str(Z), "--ell", str(ELL), "--shards", "2",
         "--max-pattern-len", "8", "--store-dir", str(store)],
        check=True, env=_cli_env(), capture_output=True, timeout=120,
    )
    return pwm, store


class Cluster:
    """One running ``serve-http`` subprocess plus a tiny sync HTTP client."""

    def __init__(self, args, *, expect_ready: bool = True, timeout: float = 60.0):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve-http", *args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=_cli_env(), text=True,
        )
        self.base = None
        if expect_ready:
            line = self.proc.stdout.readline().strip()
            if not line.startswith("serving on http://"):
                self.proc.kill()
                raise AssertionError(
                    f"no ready line, got {line!r}; stderr: "
                    f"{self.proc.stderr.read()[-2000:]}"
                )
            self.base = line.split("serving on ", 1)[1]

    def get(self, path, timeout=15.0):
        with urllib.request.urlopen(self.base + path, timeout=timeout) as response:
            return json.loads(response.read())

    def get_text(self, path, timeout=15.0):
        with urllib.request.urlopen(self.base + path, timeout=timeout) as response:
            return response.read().decode()

    def post(self, path, payload, timeout=30.0):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read() or b"{}")

    def terminate(self, timeout=25.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@needs_fork
class TestClusterServing:
    def test_metrics_aggregate_to_the_client_tally(self, served_store):
        _, store = served_store
        cluster = Cluster(["--store", str(store), "--workers", "2", "--port", "0"])
        try:
            source = read_pwm(served_store[0])
            patterns = [
                list(pattern)
                for pattern in sample_valid_patterns(source, Z, m=ELL, count=4, seed=1)
            ]
            sent = 0
            for round_number in range(6):
                for pattern in patterns:
                    status, body = cluster.post("/query", {"pattern": pattern})
                    assert status == 200
                    sent += 1
            payload = cluster.get("/stats")
            workers = payload["workers"]
            assert sorted(workers) == ["0", "1"]
            per_worker = [w["service"]["queries"] for w in workers.values()]
            assert sum(per_worker) == sent
            supervisor = payload["supervisor"]
            assert supervisor["workers"] == 2
            assert supervisor["respawns"] == 0
            text = cluster.get_text("/metrics")
            # The summed total equals the client tally, and the per-worker
            # labelled series add up to exactly that total.
            assert f"repro_service_queries_total {sent}" in text
            labelled = [
                int(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_cluster_worker_queries_total{")
            ]
            assert len(labelled) == 2 and sum(labelled) == sent
            assert cluster.terminate() == 0
        finally:
            cluster.kill()

    def test_update_fanout_soak_is_generation_exact(self, served_store):
        import threading

        pwm, store = served_store
        cluster = Cluster(["--store", str(store), "--workers", "2", "--port", "0"])
        try:
            # The local mirror: same PWM file, same update pipeline — after g
            # local updates its source is bit-identical to the cluster's
            # generation-g store.
            mirror_source = read_pwm(pwm)
            mirror = build_index(mirror_source, Z, kind="MWSA", ell=ELL)
            patterns = [
                list(pattern)
                for pattern in sample_valid_patterns(
                    mirror_source, Z, m=ELL, count=5, seed=9
                )
            ]
            updates = [
                [{"position": 5, "distribution": {"A": 0.6, "C": 0.4}}],
                [{"position": 100, "distribution": {"B": 0.55, "D": 0.45}}],
            ]
            oracles = {
                0: {
                    json.dumps(p): brute_force_occurrences(mirror_source, p, Z)
                    for p in patterns
                }
            }
            answers: list[tuple[str, list, int]] = []
            statuses: list[int] = []
            lock = threading.Lock()

            def query_worker(worker: int) -> None:
                for step in range(12):
                    pattern = patterns[(worker + step) % len(patterns)]
                    status, body = cluster.post("/query", {"pattern": pattern})
                    with lock:
                        statuses.append(status)
                        if status == 200:
                            answers.append(
                                (json.dumps(pattern), body["positions"],
                                 body["generation"])
                            )

            threads = [
                threading.Thread(target=query_worker, args=(n,)) for n in range(4)
            ]
            for thread in threads:
                thread.start()
            # Mid-soak mutations, serialized through the supervisor; the
            # update response only returns after every worker re-mapped.
            for generation, update in enumerate(updates, start=1):
                time.sleep(0.05)
                status, body = cluster.post("/update", {"updates": update})
                assert status == 200, body
                mirror.apply_updates(parse_updates(update))
                oracles[generation] = {
                    json.dumps(p): brute_force_occurrences(mirror_source, p, Z)
                    for p in patterns
                }
            for thread in threads:
                thread.join(timeout=60)
            assert all(status == 200 for status in statuses)  # never a 5xx
            assert len(answers) == 48
            for key, positions, generation in answers:
                assert positions == oracles[generation][key], (key, generation)
            # Post-update queries serve the newest generation exactly.
            for pattern in patterns:
                status, body = cluster.post("/query", {"pattern": pattern})
                assert status == 200
                assert body["generation"] == len(updates)
                assert body["positions"] == oracles[len(updates)][json.dumps(pattern)]
            payload = cluster.get("/stats")
            assert payload["supervisor"]["generation"] == len(updates)
            assert payload["supervisor"]["updates"] == len(updates)
            assert cluster.terminate() == 0
        finally:
            cluster.kill()

    def test_worker_crash_respawns_and_port_stays_bound(self, served_store):
        _, store = served_store
        cluster = Cluster(["--store", str(store), "--workers", "2", "--port", "0"])
        try:
            payload = cluster.get("/stats")
            pids_before = set(map(int, payload["supervisor"]["pids"].values()))
            assert len(pids_before) == 2
            victim = min(pids_before)
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 20.0
            respawned = None
            while time.monotonic() < deadline:
                # The port must stay bound throughout: the supervisor holds
                # the listen socket, so connections are never refused — at
                # worst an in-flight request rides a dying worker once.
                try:
                    respawned = cluster.get("/stats", timeout=5.0)
                except (urllib.error.URLError, ConnectionError, OSError):
                    time.sleep(0.1)
                    continue
                supervisor = respawned["supervisor"]
                if supervisor["respawns"] >= 1 and supervisor["workers"] == 2:
                    break
                time.sleep(0.1)
            assert respawned is not None
            supervisor = respawned["supervisor"]
            assert supervisor["respawns"] >= 1
            assert supervisor["workers"] == 2
            pids_after = set(map(int, supervisor["pids"].values()))
            assert victim not in pids_after
            assert len(pids_after) == 2
            assert cluster.get("/healthz")["status"] == "ok"
            assert cluster.terminate() == 0
        finally:
            cluster.kill()

    def test_warm_log_primes_every_worker_before_traffic(self, served_store, tmp_path):
        pwm, store = served_store
        source = read_pwm(pwm)
        patterns = [
            list(pattern)
            for pattern in sample_valid_patterns(source, Z, m=ELL, count=3, seed=4)
        ]
        log = tmp_path / "warm.log"
        # Log order and repeats: the most frequent pattern must be warmed.
        log.write_text("\n".join(
            json.dumps(patterns[step % len(patterns)]) for step in range(9)
        ))
        cluster = Cluster(
            ["--store", str(store), "--workers", "2", "--port", "0",
             "--warm-log", str(log)]
        )
        try:
            # The very first wave is all cache hits on every worker: warming
            # finished before the ready line, whichever worker answers.
            for pattern in patterns:
                for _ in range(2):
                    status, body = cluster.post("/query", {"pattern": pattern})
                    assert status == 200
                    assert body["cached"] is True, pattern
            assert cluster.terminate() == 0
        finally:
            cluster.kill()


@needs_fork
class TestSigtermDuringStartup:
    """``serve-http`` terminated while still loading must exit 0 quietly."""

    @pytest.mark.parametrize("workers", ["1", "2"])
    def test_exit_zero_when_terminated_mid_build(self, workers):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve-http",
             "--dataset", "EFM", "--length", "60000", "--z", "8", "--ell", "4",
             "--workers", workers, "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=_cli_env(), text=True,
        )
        try:
            # Past interpreter startup (~0.3 s, handlers installed), inside
            # the ~10 s index build: the startup window the fix covers.
            time.sleep(2.5)
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            stdout, stderr = proc.communicate(timeout=10)
            assert code == 0, stderr[-2000:]
            assert "serving on" not in stdout
            assert "Traceback" not in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
