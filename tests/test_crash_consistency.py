"""Crash-consistency harness: torn files, WAL recovery, failpoint kill sweeps.

The store layer promises that a process killed at *any* write/rename/fsync
boundary leaves the index recoverable: single-file stores are old-or-new
(never torn), and a directory store whose update batch reached the fsync'd
WAL commit rolls forward to an index bit-identical to a fresh build on the
post-update string.  This module checks that promise the hard way:

* structured corruption detection — truncations at the magic, mid-header
  and mid-blob, flipped array and header bytes, torn WAL frames;
* a kill sweep: the real ``repro.cli update``/``compact`` commands run in a
  subprocess with ``REPRO_FAILPOINTS=<name>=kill`` for every registered
  failpoint, then ``recover_sharded_store`` must restore bit-identical
  answers (checked against the brute-force oracle);
* compaction refusing to run on a store a crashed refresh left dirty;
* property-style fuzz: random update batches (from the differential-fuzz
  generators) crashed at assorted failpoints over monolithic and sharded
  stores;
* cluster chaos: a live ``serve-http --workers 2`` cluster surviving a
  SIGKILL'd worker mid-update-storm, a supervisor restart over a dirty
  store, and a persistently failing disk (degraded 503 writes, reads keep
  answering, flag clears once a persist succeeds).
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import struct
import subprocess
import sys
import time
import urllib.error
from pathlib import Path

import numpy as np
import pytest

from test_differential_fuzz import (
    assert_index_matches_oracle,
    random_patterns,
    random_update_batch,
    random_weighted_string,
)
from test_http_cluster import Cluster, _cli_env, needs_fork

from repro.core.weighted_string import WeightedString
from repro.errors import StoreCorruptionError, StoreError
from repro.faultinject import (
    InjectedFault,
    clear,
    configure,
    failpoint,
    registered_failpoints,
)
from repro.indexes import build_index, brute_force_occurrences
from repro.io.store import (
    WAL_NAME,
    append_wal,
    apply_updates_durably,
    compact_store,
    load_index,
    load_sharded_store,
    read_wal,
    recover_sharded_store,
    save_index,
    save_sharded_store,
    verify_store,
)

Z = 4.0
ELL = 3

needs_sigkill = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="kill failpoints need SIGKILL"
)

#: The canonical update batch the sweep replays: plain decimal rows so the
#: JSON round-trip through the CLI is exactly the floats applied in-process.
UPDATE_PAIRS = [
    [2, [0.7, 0.1, 0.1, 0.1]],
    [11, [0.05, 0.05, 0.85, 0.05]],
    [37, [0.25, 0.25, 0.25, 0.25]],
]

#: Failpoints on the durable-update path (everything but compaction); the
#: WAL commit precedes all of them, so a kill at any one must roll forward.
UPDATE_FAILPOINTS = tuple(
    name for name in registered_failpoints()
    if not name.startswith("store.compact.")
)

COMPACT_FAILPOINTS = tuple(
    name for name in registered_failpoints()
    if name.startswith("store.compact.")
)


def _fresh(source: WeightedString) -> WeightedString:
    """An independent copy: updates to one index never leak into another."""
    return WeightedString(source.matrix.copy(), source.alphabet)


def _run_cli(args, failpoints: str | None = None, timeout: float = 120.0):
    env = _cli_env()
    if failpoints:
        env["REPRO_FAILPOINTS"] = failpoints
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, capture_output=True, text=True, timeout=timeout,
    )


def _pairs(entries):
    return [(int(position), list(map(float, row))) for position, row in entries]


@pytest.fixture(scope="module")
def crash_setup(tmp_path_factory):
    """A 2-shard store, the post-update mirror index, and an oracle pattern mix."""
    root = tmp_path_factory.mktemp("crash-base")
    source = random_weighted_string("skewed", 60, 4, 7)
    store = root / "store"
    sharded = build_index(
        _fresh(source), Z, kind="MWSA", ell=ELL, shards=2, max_pattern_len=2 * ELL
    )
    save_sharded_store(store, sharded)
    mirror = build_index(_fresh(source), Z, kind="MWSA", ell=ELL)
    mirror.apply_updates(_pairs(UPDATE_PAIRS))
    patterns = random_patterns(mirror.source, ELL, 99)
    assert patterns
    return store, mirror, patterns


# --------------------------------------------------------------------------- #
# structured corruption detection (container truncations and byte flips)       #
# --------------------------------------------------------------------------- #
class TestContainerDamage:
    @pytest.fixture()
    def stored(self, tmp_path):
        source = random_weighted_string("skewed", 40, 4, 3)
        index = build_index(source, Z, kind="MWSA", ell=ELL)
        path = tmp_path / "idx.bin"
        save_index(path, index)
        return path

    @staticmethod
    def _layout(path: Path):
        blob = bytearray(path.read_bytes())
        header_len = struct.unpack_from("<Q", blob, 8)[0]
        header = json.loads(bytes(blob[20:20 + header_len]).decode("utf-8"))
        data_start = (20 + header_len + 63) & ~63
        return blob, header, data_start

    def test_truncated_at_magic_raises_structured_error(self, stored):
        stored.write_bytes(stored.read_bytes()[:4])
        with pytest.raises(StoreError, match="cannot read|bad magic|truncated"):
            load_index(stored, mmap=False)

    def test_truncated_mid_header_raises_structured_error(self, stored):
        stored.write_bytes(stored.read_bytes()[:26])
        with pytest.raises(StoreError, match="truncated|corrupt|cannot read"):
            load_index(stored, mmap=False)

    def test_truncated_mid_blob_raises_corruption_error(self, stored):
        blob = stored.read_bytes()
        stored.write_bytes(blob[: len(blob) - 64])
        with pytest.raises(StoreCorruptionError):
            load_index(stored, mmap=False)

    def test_flipped_array_byte_names_file_offset_and_digests(self, stored):
        blob, header, data_start = self._layout(stored)
        entry = next(
            spec for spec in header["arrays"].values()
            if int(np.prod(spec["shape"])) > 0
        )
        position = data_start + int(entry["offset"])
        blob[position] ^= 0xFF
        stored.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError) as info:
            load_index(stored, mmap=False)  # RAM loads verify by default
        error = info.value
        assert error.path == str(stored)
        assert error.offset is not None
        assert error.expected != error.actual
        # Checksums are an explicit opt-out for the mmap hot path.
        index = load_index(stored, mmap=False, verify=False)
        assert index is not None
        audit = verify_store(stored)
        assert not audit["ok"]
        assert audit["problems"]

    def test_flipped_header_byte_fails_the_header_checksum(self, stored):
        blob = bytearray(stored.read_bytes())
        blob[24] ^= 0x01  # inside the JSON header
        stored.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError, match="header"):
            load_index(stored, mmap=False, verify=False)


# --------------------------------------------------------------------------- #
# WAL framing                                                                  #
# --------------------------------------------------------------------------- #
class TestWalFraming:
    def test_round_trip_and_commit_offsets(self, tmp_path):
        first = append_wal(tmp_path, {"type": "update", "updates": [[1, [0.5, 0.5]]]})
        second = append_wal(tmp_path, {"type": "applied", "generations": [1]})
        assert first == 0 and second > 0
        records, valid, total = read_wal(tmp_path)
        assert [record["type"] for record in records] == ["update", "applied"]
        assert valid == total == (tmp_path / WAL_NAME).stat().st_size

    def test_torn_tail_is_discarded_not_fatal(self, tmp_path):
        append_wal(tmp_path, {"type": "update", "updates": []})
        with open(tmp_path / WAL_NAME, "ab") as handle:
            handle.write(b"\x2a\x00\x00\x00torn")  # length says 42, 4 bytes follow
        records, valid, total = read_wal(tmp_path)
        assert len(records) == 1
        assert valid < total

    def test_corrupt_frame_stops_the_parse_at_the_damage(self, tmp_path):
        append_wal(tmp_path, {"type": "update", "updates": []})
        append_wal(tmp_path, {"type": "applied", "generations": []})
        path = tmp_path / WAL_NAME
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF  # inside the first record's payload
        path.write_bytes(bytes(blob))
        records, valid, total = read_wal(tmp_path)
        assert records == []
        assert valid == 0 and total == len(blob)


# --------------------------------------------------------------------------- #
# failpoint registry                                                           #
# --------------------------------------------------------------------------- #
class TestFailpointRegistry:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        clear()
        yield
        clear()

    def test_unknown_name_or_action_is_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            configure("store.container.tmp_writen=kill")  # typo guard
        with pytest.raises(ValueError, match="action"):
            configure("store.wal.appended=explode")

    def test_unregistered_failpoint_call_raises(self):
        with pytest.raises(RuntimeError, match="not registered"):
            failpoint("store.bogus.point")

    def test_error_fires_every_time_error_once_fires_once(self):
        configure("store.wal.appended=error-once")
        with pytest.raises(InjectedFault):
            failpoint("store.wal.appended")
        failpoint("store.wal.appended")  # spent
        configure("store.wal.appended=error")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                failpoint("store.wal.appended")

    def test_registry_covers_every_durability_layer(self):
        names = registered_failpoints()
        assert len(names) >= 10
        for prefix in ("store.container.", "store.manifest.", "store.wal.",
                       "store.refresh.", "store.compact."):
            assert any(name.startswith(prefix) for name in names), prefix


# --------------------------------------------------------------------------- #
# the kill sweep: every update-path failpoint must roll forward                #
# --------------------------------------------------------------------------- #
@needs_sigkill
class TestKillSweep:
    @pytest.mark.parametrize("name", UPDATE_FAILPOINTS)
    def test_kill_during_update_recovers_bit_identical(
        self, tmp_path, crash_setup, name
    ):
        base, mirror, patterns = crash_setup
        store = tmp_path / "store"
        shutil.copytree(base, store)
        result = _run_cli(
            ["update", "--store", str(store), "--updates", json.dumps(UPDATE_PAIRS)],
            failpoints=f"{name}=kill",
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        recovered, report = recover_sharded_store(store)
        # Every armed point sits at or after the WAL append, and a SIGKILL
        # keeps bytes the process already wrote — so recovery must always
        # roll the batch forward, never back.
        assert np.array_equal(recovered.source.matrix, mirror.source.matrix), (
            name, report
        )
        assert verify_store(store)["ok"], name
        assert_index_matches_oracle(
            recovered, recovered.source, patterns, Z, f"recover/{name}"
        )
        reloaded = load_sharded_store(store, mmap=False)
        assert np.array_equal(reloaded.source.matrix, mirror.source.matrix), name
        _again, second = recover_sharded_store(store)
        assert second["status"] == "clean", (name, second)

    @pytest.mark.parametrize("name", COMPACT_FAILPOINTS)
    def test_kill_during_compaction_keeps_answers(self, tmp_path, crash_setup, name):
        base, mirror, patterns = crash_setup
        store = tmp_path / "store"
        shutil.copytree(base, store)
        # Generation-stamped files (the supervisor's refresh mode) give
        # compaction real work at every failpoint, including the unlinks.
        index = load_sharded_store(store, mmap=False)
        apply_updates_durably(
            store, index, _pairs(UPDATE_PAIRS), generation_names=True
        )
        assert any(".g" in path.name for path in store.glob("shard-*.idx"))
        result = _run_cli(
            ["compact", "--store", str(store)], failpoints=f"{name}=kill"
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        recovered, report = recover_sharded_store(store)
        assert np.array_equal(recovered.source.matrix, mirror.source.matrix), (
            name, report
        )
        assert verify_store(store)["ok"], name
        assert_index_matches_oracle(
            recovered, recovered.source, patterns, Z, f"compact/{name}"
        )

    def test_compact_refuses_dirty_store_until_recovered(self, tmp_path, crash_setup):
        base, mirror, patterns = crash_setup
        store = tmp_path / "store"
        shutil.copytree(base, store)
        result = _run_cli(
            ["update", "--store", str(store), "--updates", json.dumps(UPDATE_PAIRS)],
            failpoints="store.refresh.shard_written=kill",
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        # The crashed refresh left a committed-but-unapplied WAL record:
        # compaction must refuse rather than drop the only recovery source.
        with pytest.raises(StoreCorruptionError, match="refusing to compact"):
            compact_store(store)
        _recovered, report = recover_sharded_store(store)
        assert report["status"] == "recovered"
        compacted = compact_store(store)
        assert compacted["shards"] == 2
        assert not (store / WAL_NAME).exists()
        final = load_sharded_store(store, mmap=False)
        assert np.array_equal(final.source.matrix, mirror.source.matrix)
        assert_index_matches_oracle(
            final, final.source, patterns, Z, "compact-after-recover"
        )


# --------------------------------------------------------------------------- #
# property-style fuzz: random batches × failpoints × store layouts             #
# --------------------------------------------------------------------------- #
@needs_sigkill
class TestCrashFuzz:
    @pytest.mark.parametrize(
        "seed,name",
        [
            (1301, "store.wal.appended"),
            (1303, "store.container.replaced"),
            (1305, "store.refresh.manifest_written"),
        ],
    )
    def test_random_batches_survive_kills_on_sharded_stores(
        self, tmp_path, seed, name
    ):
        source = random_weighted_string("uniform", 48, 3, seed)
        store = tmp_path / "store"
        sharded = build_index(
            _fresh(source), Z, kind="MWSA", ell=ELL, shards=2,
            max_pattern_len=2 * ELL,
        )
        save_sharded_store(store, sharded)
        batch = random_update_batch(source, seed + 1, count=3)
        payload = json.dumps(
            [[position, [float(value) for value in row]] for position, row in batch]
        )
        mirror = build_index(_fresh(source), Z, kind="MWSA", ell=ELL)
        mirror.apply_updates(_pairs(json.loads(payload)))
        result = _run_cli(
            ["update", "--store", str(store), "--updates", payload],
            failpoints=f"{name}=kill",
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        recovered, _report = recover_sharded_store(store)
        assert np.array_equal(recovered.source.matrix, mirror.source.matrix)
        assert verify_store(store)["ok"]
        patterns = random_patterns(mirror.source, ELL, seed + 2)
        assert_index_matches_oracle(
            recovered, recovered.source, patterns, Z, f"fuzz/{seed}/{name}"
        )

    @pytest.mark.parametrize(
        "name",
        [
            "store.container.tmp_written",
            "store.container.fsynced",
            "store.container.replaced",
        ],
    )
    def test_single_file_store_is_old_or_new_never_torn(self, tmp_path, name):
        source = random_weighted_string("skewed", 48, 4, 11)
        index = build_index(_fresh(source), Z, kind="MWSA", ell=ELL)
        path = tmp_path / "mono.idx"
        save_index(path, index)
        before = index.source.matrix.copy()
        batch = random_update_batch(source, 12, count=2)
        payload = json.dumps(
            [[position, [float(value) for value in row]] for position, row in batch]
        )
        mirror = build_index(_fresh(source), Z, kind="MWSA", ell=ELL)
        mirror.apply_updates(_pairs(json.loads(payload)))
        result = _run_cli(
            ["update", "--store", str(path), "--updates", payload],
            failpoints=f"{name}=kill",
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert verify_store(path)["ok"], name
        reloaded = load_index(path, mmap=False)
        matrix = reloaded.source.matrix
        old = np.array_equal(matrix, before)
        new = np.array_equal(matrix, mirror.source.matrix)
        assert old or new, name
        if name == "store.container.replaced":
            # The rename happened before the kill: the new bytes are live.
            assert new


# --------------------------------------------------------------------------- #
# client resilience                                                            #
# --------------------------------------------------------------------------- #
class TestClientResilience:
    def test_retry_delay_honors_retry_after(self):
        from repro.service.client import AsyncHttpClient, HttpResponse

        client = AsyncHttpClient(None, None, backoff=0.001, max_backoff=0.002)
        throttled = HttpResponse(429, "Too Many", {"retry-after": "0.5"}, b"")
        assert client._retry_delay(0, throttled) >= 0.5
        assert client._retry_delay(0, None) <= 0.002 * 1.25

    def test_request_retries_through_503_and_reconnects(self):
        from repro.service.client import AsyncHttpClient

        async def main():
            hits = {"count": 0}

            async def handler(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    length = 0
                    while True:
                        raw = await reader.readline()
                        if raw in (b"\r\n", b"\n", b""):
                            break
                        if raw.lower().startswith(b"content-length:"):
                            length = int(raw.split(b":", 1)[1])
                    if length:
                        await reader.readexactly(length)
                    hits["count"] += 1
                    if hits["count"] < 3:
                        writer.write(
                            b"HTTP/1.1 503 Unavailable\r\nRetry-After: 0\r\n"
                            b"Content-Length: 2\r\n\r\n{}"
                        )
                    else:
                        writer.write(
                            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}"
                        )
                    await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncHttpClient.connect(
                "127.0.0.1", port, timeout=5.0, retries=3, backoff=0.001
            )
            response = await client.request("POST", "/query", {"pattern": [0]})
            assert response.status == 200
            assert hits["count"] == 3
            # Exhausted budgets surface the last throttle response as-is.
            hits["count"] = -100
            throttled = await client.request("GET", "/stats", retries=0)
            assert throttled.status == 503
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(main())


# --------------------------------------------------------------------------- #
# cluster chaos                                                                #
# --------------------------------------------------------------------------- #
def _post_with_retry(cluster, path, payload, attempts=80):
    last = None
    for _ in range(attempts):
        try:
            return cluster.post(path, payload)
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last = error
            time.sleep(0.1)
    raise AssertionError(f"no response after retries: {last}")


def _build_cluster_store(tmp_path, seed=21):
    source = random_weighted_string("skewed", 60, 4, seed)
    store = tmp_path / "store"
    sharded = build_index(
        _fresh(source), Z, kind="MWSA", ell=ELL, shards=2, max_pattern_len=2 * ELL
    )
    save_sharded_store(store, sharded)
    mirror = build_index(_fresh(source), Z, kind="MWSA", ell=ELL)
    return store, mirror


@needs_fork
@needs_sigkill
class TestClusterChaos:
    def test_update_storm_survives_worker_sigkill(self, tmp_path):
        store, mirror = _build_cluster_store(tmp_path)
        patterns = random_patterns(mirror.source, ELL, 31)[:4]
        cluster = Cluster(["--store", str(store), "--workers", "2", "--port", "0"])
        try:
            pids = set(map(int, cluster.get("/stats")["supervisor"]["pids"].values()))
            assert len(pids) == 2
            victim = min(pids)
            generations = []
            for step in range(6):
                if step == 2:
                    os.kill(victim, signal.SIGKILL)
                pairs = [[(step * 7) % 60, [0.55, 0.15, 0.15, 0.15]]]
                status, body = _post_with_retry(cluster, "/update", {"updates": pairs})
                assert status == 200, body
                mirror.apply_updates(_pairs(pairs))
                generations.append(body["update"]["cluster_generation"])
                status, answer = _post_with_retry(
                    cluster, "/query", {"pattern": patterns[step % len(patterns)]}
                )
                assert status == 200, answer
            # Updates are serialized through the supervisor: the generation
            # is strictly monotonic straight through the worker crash.
            assert generations == list(range(1, 7))
            deadline = time.monotonic() + 20.0
            supervisor = None
            while time.monotonic() < deadline:
                supervisor = cluster.get("/stats")["supervisor"]
                if supervisor["respawns"] >= 1 and supervisor["workers"] == 2:
                    break
                time.sleep(0.1)
            assert supervisor["respawns"] >= 1
            assert supervisor["workers"] == 2
            for pattern in patterns:
                status, body = _post_with_retry(cluster, "/query", {"pattern": pattern})
                assert status == 200
                assert body["positions"] == brute_force_occurrences(
                    mirror.source, pattern, Z
                )
            assert cluster.get("/healthz")["status"] == "ok"
            assert cluster.terminate() == 0
        finally:
            cluster.kill()

    def test_restart_over_dirty_store_recovers_then_serves(self, tmp_path):
        store, mirror = _build_cluster_store(tmp_path, seed=22)
        result = _run_cli(
            ["update", "--store", str(store), "--updates", json.dumps(UPDATE_PAIRS)],
            failpoints="store.refresh.shard_written=kill",
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        mirror.apply_updates(_pairs(UPDATE_PAIRS))  # committed: rolls forward
        cluster = Cluster(["--store", str(store), "--workers", "2", "--port", "0"])
        try:
            health = cluster.get("/healthz")
            assert health["status"] == "ok"
            assert health["degraded"] is False
            supervisor = cluster.get("/stats")["supervisor"]
            assert supervisor["recovery"]["status"] == "recovered"
            patterns = random_patterns(mirror.source, ELL, 33)[:4]
            for pattern in patterns:
                status, body = cluster.post("/query", {"pattern": pattern})
                assert status == 200
                assert body["positions"] == brute_force_occurrences(
                    mirror.source, pattern, Z
                )
            assert cluster.terminate() == 0
        finally:
            cluster.kill()

    def test_persist_failure_degrades_then_clears(self, tmp_path, monkeypatch):
        store, mirror = _build_cluster_store(tmp_path, seed=23)
        patterns = random_patterns(mirror.source, ELL, 35)[:3]
        monkeypatch.setenv("REPRO_FAILPOINTS", "store.refresh.shard_written=error-once")
        cluster = Cluster(["--store", str(store), "--workers", "2", "--port", "0"])
        monkeypatch.delenv("REPRO_FAILPOINTS")
        try:
            pairs = [[5, [0.6, 0.2, 0.1, 0.1]]]
            status, body = cluster.post("/update", {"updates": pairs})
            assert status == 503, body
            assert "persist" in body["error"]
            health = cluster.get("/healthz")
            assert health["status"] == "ok"  # reads still serve
            assert health["degraded"] is True
            assert cluster.get("/stats")["supervisor"]["degraded"] is True
            assert "repro_cluster_degraded 1" in cluster.get_text("/metrics")
            for pattern in patterns:
                status, answer = cluster.post("/query", {"pattern": pattern})
                assert status == 200
                assert answer["generation"] == 0  # rolled back, pre-update
                assert answer["positions"] == brute_force_occurrences(
                    mirror.source, pattern, Z
                )
            # The injected fault was one-shot: the next persist succeeds and
            # the degraded flag clears everywhere.
            status, body = cluster.post("/update", {"updates": pairs})
            assert status == 200, body
            assert body["update"]["cluster_generation"] == 1
            mirror.apply_updates(_pairs(pairs))
            health = cluster.get("/healthz")
            assert health["degraded"] is False
            assert "repro_cluster_degraded 0" in cluster.get_text("/metrics")
            for pattern in patterns:
                status, answer = cluster.post("/query", {"pattern": pattern})
                assert status == 200
                assert answer["generation"] == 1
                assert answer["positions"] == brute_force_occurrences(
                    mirror.source, pattern, Z
                )
            assert verify_store(store)["ok"]
            assert cluster.terminate() == 0
        finally:
            cluster.kill()
