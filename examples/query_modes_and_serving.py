#!/usr/bin/env python3
"""Query modes and the serving layer: rich results over one index.

Every index variant answers every query mode through the unified planner:

* ``locate``       — the classic sorted occurrence positions;
* ``locate_probs`` — positions plus their exact occurrence probabilities;
* ``topk``         — the k most probable occurrences, ranked;
* ``count`` / ``exists`` — cardinality-only answers;
* per-query ``z`` overrides and multi-z sweeps.

The second half fronts the index with a cached ``QueryService`` — the
serving building block behind ``python -m repro.cli serve`` — and shows the
cache statistics after a skewed request stream.

Run with:  python examples/query_modes_and_serving.py
"""

from __future__ import annotations

from repro import WeightedString
from repro.indexes import Query, build_index
from repro.service import QueryService


def main() -> None:
    # The paper's Example 1 string (length 6 over {A, B}), indexed at z = 4.
    uncertain = WeightedString.from_dicts(
        [
            {"A": 1.0},
            {"A": 0.5, "B": 0.5},
            {"A": 0.75, "B": 0.25},
            {"A": 0.8, "B": 0.2},
            {"A": 0.5, "B": 0.5},
            {"A": 0.25, "B": 0.75},
        ]
    )
    index = build_index(uncertain, 4, kind="MWSA", ell=2)

    # --- Rich query modes -------------------------------------------------
    print("locate       :", index.locate("AB"))
    print("locate_probs :", index.locate_probs("AB"))
    print("topk (k=2)   :", index.topk("AB", 2))
    print("count / exists:", index.count("AB"), index.exists("BBBB"))

    # Per-query threshold override: answer at a stricter 1/z without rebuilding.
    strict = index.query("AB", z=2)
    print("locate at z=2:", strict.positions)

    # Multi-z sweep: one request, one sub-result per threshold.
    sweep = index.query("AB", mode="count", zs=(2, 3, 4))
    print("count sweep  :", [(result.z, result.count) for result in sweep.sweep])

    # --- The serving layer ------------------------------------------------
    service = QueryService(index, cache_size=64)
    hot, cold = "AB", "BA"
    for pattern in [hot, hot, cold, hot, hot, cold, hot]:  # skewed traffic
        service.query(pattern)
    service.query(Query(hot, mode="topk", k=1))  # a different mode: new entry
    stats = service.stats()
    print(
        f"service      : {stats['queries']} queries, "
        f"hit rate {stats['hit_rate']:.0%}, {stats['entries']} cached results"
    )


if __name__ == "__main__":
    main()
