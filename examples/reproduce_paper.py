#!/usr/bin/env python3
"""Reproduce every table and figure of the paper's evaluation (Section 7).

Thin wrapper over ``python -m repro.bench`` kept as an example entry point:

    python examples/reproduce_paper.py --scale tiny          # seconds
    python examples/reproduce_paper.py --scale small         # minutes
    python examples/reproduce_paper.py --scale paper         # full parameters

The output prints one text table per figure/series; EXPERIMENTS.md records a
captured run together with the comparison against the paper's reported
numbers.
"""

from __future__ import annotations

import sys

from repro.bench.__main__ import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
