#!/usr/bin/env python3
"""The HTTP serving layer, end to end in one process.

Starts the stdlib-only asyncio HTTP server (the machinery behind
``python -m repro.cli serve-http``) over a cached ``QueryService``, then
drives it with the bundled asyncio client:

* single queries (``POST /query``) — concurrent requests coalesce into one
  micro-batched execution, each response reports its cache provenance;
* an explicit batch (``POST /query/batch``) with a per-item error;
* a point update (``POST /update``) that reweights one position and
  invalidates exactly the affected cache entries;
* counters (``GET /stats``) and Prometheus text (``GET /metrics``);
* a graceful shutdown that drains everything in flight.

Run with:  python examples/http_serving.py
"""

from __future__ import annotations

import asyncio

from repro import WeightedString
from repro.indexes import build_index
from repro.service import QueryService
from repro.service.client import AsyncHttpClient
from repro.service.server import HttpServer


def build_service() -> QueryService:
    # The paper's Example 1 string (length 6 over {A, B}), indexed at z = 4.
    uncertain = WeightedString.from_dicts(
        [
            {"A": 1.0},
            {"A": 0.5, "B": 0.5},
            {"A": 0.75, "B": 0.25},
            {"A": 0.8, "B": 0.2},
            {"A": 0.5, "B": 0.5},
            {"A": 0.25, "B": 0.75},
        ]
    )
    index = build_index(uncertain, 4, kind="MWSA", ell=2)
    return QueryService(index, cache_size=64)


async def main() -> None:
    server = HttpServer(build_service(), batch_window=0.002, max_batch=16)
    host, port = await server.start("127.0.0.1", 0)  # 0 = ephemeral port
    print(f"serving on http://{host}:{port}")

    client = await AsyncHttpClient.connect(host, port)

    # --- Single queries: concurrent requests micro-batch ------------------
    async def one_query(pattern: str) -> dict:
        worker = await AsyncHttpClient.connect(host, port)
        response = await worker.request("POST", "/query", {"pattern": pattern})
        await worker.close()
        return response.json()

    answers = await asyncio.gather(*(one_query("AB") for _ in range(4)))
    print("POST /query  :", answers[0]["positions"],
          "cached flags:", [answer["cached"] for answer in answers])
    batching = server.server_stats()["batching"]
    print(f"micro-batching: {batching['batches']} executions for "
          f"{batching['batched_requests']} requests "
          f"(largest batch {batching['largest_batch']})")

    # --- An explicit batch with one invalid entry -------------------------
    response = await client.request(
        "POST", "/query/batch",
        {"queries": ["AB", {"pattern": "AB", "mode": "topk", "k": 1}, "A?"]},
    )
    for item in response.json()["results"]:
        print("batch item   :", item.get("positions", item.get("error")))

    # --- A point update invalidates exactly the affected entries ----------
    response = await client.request(
        "POST", "/update",
        {"updates": [{"position": 1, "distribution": {"B": 1.0}}]},
    )
    report = response.json()["update"]
    print(f"POST /update : strategy={report['strategy']}, "
          f"invalidated {report['invalidated_entries']} cache entries")
    after = await client.request("POST", "/query", {"pattern": "AB"})
    print("after update :", after.json()["positions"])

    # --- Observability ----------------------------------------------------
    stats = (await client.request("GET", "/stats")).json()
    print(f"GET /stats   : {stats['service']['queries']} queries, "
          f"hit rate {stats['service']['hit_rate']:.0%}, "
          f"{stats['server']['requests']} HTTP requests")
    metrics = (await client.request("GET", "/metrics")).text
    sample = [line for line in metrics.splitlines()
              if line.startswith("repro_service_queries_total")]
    print("GET /metrics :", *sample)

    await client.close()
    report = await server.shutdown()
    print(f"shutdown     : drained {report['drained']} in-flight requests")


if __name__ == "__main__":
    asyncio.run(main())
