#!/usr/bin/env python3
"""Quickstart: index a small uncertain string and run pattern queries.

This walks through the paper's running example (Example 1): a weighted
string over {A, B}, the threshold 1/z = 1/4, its heavy string and
z-estimation, and pattern queries against both a baseline index (WSA) and
the paper's minimizer-based index (MWSA).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import WeightedString, build_z_estimation
from repro.bench.measure import measure_build
from repro.core.heavy import HeavyString
from repro.indexes import brute_force_occurrences, build_index


def main() -> None:
    # --- The paper's Example 1: a weighted string of length 6 over {A, B}. ---
    uncertain = WeightedString.from_dicts(
        [
            {"A": 1.0},
            {"A": 0.5, "B": 0.5},
            {"A": 0.75, "B": 0.25},
            {"A": 0.8, "B": 0.2},
            {"A": 0.5, "B": 0.5},
            {"A": 0.25, "B": 0.75},
        ]
    )
    z = 4  # threshold 1/z = 1/4
    print(f"weighted string: {uncertain}")
    print(f"heavy string   : {HeavyString(uncertain).text()}")

    # The occurrence probability of ABA at (1-based) position 3 is 3/40,
    # exactly as computed in the paper's Example 1.
    pattern = uncertain.alphabet.encode("ABA")
    probability = uncertain.occurrence_probability(pattern, 2)
    print(f"P(X[3..5] = ABA) = {probability:.4f}  (paper: 3/40 = 0.075)")

    # --- The z-estimation (Theorem 2). --------------------------------------
    estimation = build_z_estimation(uncertain, z)
    print(f"\n{z}-estimation ({estimation.width} strings of length {estimation.length}):")
    for j in range(estimation.width):
        print(f"  S{j + 1} = {estimation.text(j)}   pi = {estimation.ends[j].tolist()}")

    # --- Indexing and querying (through the central index factory). ----------
    baseline_measured = measure_build(
        lambda: build_index(uncertain, z, kind="WSA"), "WSA", trace_memory=True
    )
    minimizer_measured = measure_build(
        lambda: build_index(uncertain, z, kind="MWSA", ell=4), "MWSA",
        trace_memory=True,
    )
    baseline = baseline_measured.index
    minimizer_index = minimizer_measured.index

    for text in ("AAAA", "BAAB", "BABA", "ABAA"):
        expected = brute_force_occurrences(uncertain, text, z)
        from_baseline = baseline.locate(text)
        from_minimizer = minimizer_index.locate(text)
        print(
            f"pattern {text}: occurrences {from_minimizer} "
            f"(baseline {from_baseline}, brute force {expected})"
        )
        assert from_baseline == expected == from_minimizer

    print("\nindex sizes (space model) and measured construction cost:")
    for measured in (baseline_measured, minimizer_measured):
        peak_kb = (measured.tracemalloc_peak_bytes or 0) / 1e3
        print(
            f"  {measured.name:4s}: {measured.index.stats.index_size_bytes:6d} bytes, "
            f"built in {1e3 * measured.seconds:.1f} ms "
            f"(measured peak {peak_kb:.0f} kB)"
        )


if __name__ == "__main__":
    main()
