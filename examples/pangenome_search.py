#!/usr/bin/env python3
"""Pangenome read mapping: search sequencing reads in a population of genomes.

This is the paper's motivating bioinformatics scenario (Section 1.1): a
collection of closely related genomes is summarised as a weighted string
(per-position allele frequencies), and sequencing reads — patterns of a few
hundred letters — are matched against it with a probability threshold.

The example

1. simulates an E. faecium-like population (reference + SNP frequencies),
2. builds the space-efficient minimizer index (MWST-SE) and the WSA baseline,
3. maps simulated reads (with and without sequencing errors), and
4. compares index sizes and construction footprints.

Run with:  python examples/pangenome_search.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets.genomes import efm_like
from repro.datasets.patterns import mutate_pattern
from repro.bench.measure import measure_build
from repro.indexes import build_index

GENOME_LENGTH = 20_000
READ_LENGTH = 64
READ_COUNT = 40
Z = 32


def simulate_reads(dataset, count: int, length: int, *, seed: int = 5):
    """Draw reads from random haplotypes of the simulated population."""
    rng = np.random.default_rng(seed)
    weighted = dataset.weighted_string
    reads = []
    for _ in range(count):
        start = int(rng.integers(0, len(weighted) - length))
        haplotype = [
            int(rng.choice(weighted.sigma, p=weighted.matrix[start + offset]))
            for offset in range(length)
        ]
        reads.append((start, haplotype))
    return reads


def main() -> None:
    dataset = efm_like(GENOME_LENGTH, seed=97)
    weighted = dataset.weighted_string
    print(f"simulated pangenome: {dataset.describe()}")

    print("\nbuilding indexes (threshold 1/z = 1/%d, minimum read length %d)..." % (Z, READ_LENGTH))
    se_measured = measure_build(
        lambda: build_index(weighted, Z, kind="MWST-SE", ell=READ_LENGTH),
        "MWST-SE", trace_memory=True,
    )
    wsa_measured = measure_build(
        lambda: build_index(weighted, Z, kind="WSA"), "WSA", trace_memory=True
    )
    space_efficient = se_measured.index
    baseline = wsa_measured.index
    for measured in (se_measured, wsa_measured):
        stats = measured.index.stats
        peak_mb = (measured.tracemalloc_peak_bytes or 0) / 1e6
        print(f"  {measured.name:7s}: size {stats.index_size_bytes / 1e6:.2f} MB, "
              f"built in {measured.seconds:.2f} s, "
              f"measured peak {peak_mb:.2f} MB "
              f"(space model: {stats.construction_space_bytes / 1e6:.2f} MB)")

    reads = simulate_reads(dataset, READ_COUNT, READ_LENGTH)
    mapped = 0
    agree = 0
    for origin, read in reads:
        hits = space_efficient.locate(read)
        if hits:
            mapped += 1
        if hits == baseline.locate(read):
            agree += 1
    print(f"\nmapped {mapped}/{len(reads)} error-free reads "
          f"(baseline agreement on {agree}/{len(reads)})")

    # Reads with sequencing errors: a read with a few substitutions may drop
    # below the probability threshold, which is expected behaviour — the
    # threshold is exactly what distinguishes plausible from implausible reads.
    noisy = [mutate_pattern(read, weighted.sigma, mutations=2, seed=i) for i, (_, read) in enumerate(reads)]
    noisy_mapped = sum(1 for read in noisy if space_efficient.locate(read))
    print(f"mapped {noisy_mapped}/{len(noisy)} reads carrying 2 random substitutions")


if __name__ == "__main__":
    main()
