#!/usr/bin/env python3
"""Sensor-stream motif search over uncertain RSSI measurements.

The paper's second data domain (Section 7.1) is a signal-strength stream
where every time step carries a distribution over discretised RSSI values
(the fraction of radio channels reporting each value).  This example

1. generates an RSSI-like weighted string (σ = 91, Δ = 100 %),
2. builds the MWSA index for a minimum motif length ℓ,
3. extracts high-probability motifs from the stream and searches them, and
4. shows how the threshold 1/z controls how tolerant matching is.

Run with:  python examples/sensor_rssi_monitoring.py
"""

from __future__ import annotations

from repro.core.heavy import HeavyString
from repro.datasets.patterns import sample_valid_patterns
from repro.datasets.rssi import rssi_like
from repro.indexes import brute_force_occurrences, build_index

STREAM_LENGTH = 4_000
MOTIF_LENGTH = 12
Z_VALUES = (4, 16)


def main() -> None:
    stream = rssi_like(STREAM_LENGTH, seed=41)
    print(f"RSSI stream: {stream}")
    heavy = HeavyString(stream)
    print(f"most likely signal levels (first 30 steps): {heavy.text()[:60]}...")

    for z in Z_VALUES:
        index = build_index(stream, z, kind="MWSA", ell=MOTIF_LENGTH)
        motifs = sample_valid_patterns(stream, z, MOTIF_LENGTH, count=5, seed=7)
        print(f"\nthreshold 1/z = 1/{z}  "
              f"(index size {index.stats.index_size_bytes / 1e6:.2f} MB, "
              f"{index.stats.counters.get('forward_leaves', 0)} sampled factors)")
        for motif in motifs:
            occurrences = index.locate(motif)
            assert occurrences == brute_force_occurrences(stream, motif, z)
            levels = "-".join(stream.alphabet.letter(code) for code in motif[:6])
            print(f"  motif [{levels}...] occurs at {len(occurrences)} position(s): "
                  f"{occurrences[:8]}{'...' if len(occurrences) > 8 else ''}")

    print(
        "\nLarger z admits lower-probability matches (more occurrences) at the "
        "price of a larger index — the trade-off the paper quantifies."
    )


if __name__ == "__main__":
    main()
