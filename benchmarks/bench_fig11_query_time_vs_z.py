"""Fig. 11 — average query time vs z (patterns of the default length ℓ)."""

from __future__ import annotations

import pytest

from _helpers import build_one
from repro.datasets.patterns import sample_valid_patterns

KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G")


def _run_workload(index, patterns):
    total = 0
    for pattern in patterns:
        total += len(index.locate(pattern))
    return total


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("z", (4, 16))
def test_fig11_query_time_vs_z(benchmark, bench_scale, genomic_sources, kind, z):
    source = genomic_sources["EFM"]
    ell = bench_scale.default_ell
    index = build_one(kind, source, z, ell)
    patterns = sample_valid_patterns(
        source, z, m=ell, count=bench_scale.pattern_count, seed=1
    )

    matches = benchmark(_run_workload, index, patterns)

    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z
    benchmark.extra_info["patterns"] = len(patterns)
    benchmark.extra_info["total_matches"] = matches
    assert matches >= len(patterns)
