"""QueryService throughput — cached serving vs the uncached planner path.

Not a paper figure: this benchmark tracks the serving layer.  The workload
is a Zipf-skewed request stream (the shape of production query traffic: a
few hot patterns dominate) over a pool of valid and random patterns; the
timed payloads answer every request through a
:class:`~repro.service.QueryService` with the LRU result cache

* ``off`` — every request runs the full query planner;
* ``on``  — repeated requests are served from the cache.

The standalone runner verifies that both configurations answer identically,
that the cache hit rate is positive, and that the cached run is faster on
the skewed mix.  Run under pytest-benchmark (``pytest benchmarks/
--benchmark-only``) or standalone with tiny parameters for CI smoke tests::

    python benchmarks/bench_query_service.py --length 600 --requests 300
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

import pytest

from repro.datasets.patterns import (
    sample_random_patterns,
    sample_valid_patterns,
    sample_zipf_workload,
)
from repro.datasets.synthetic import sparse_uncertainty_string
from repro.indexes import build_index
from repro.service import QueryService

DEFAULT_LENGTH = 4_000
DEFAULT_UNIQUE = 100
DEFAULT_REQUESTS = 2_000
DEFAULT_Z = 8.0
DEFAULT_ELL = 16
DEFAULT_ZIPF_S = 1.2
DEFAULT_KIND = "MWSA"


def make_workload(length: int, unique: int, requests: int, z: float, ell: int,
                  zipf_s: float):
    """The synthetic source and a Zipf-skewed request stream over a mixed pool."""
    source = sparse_uncertainty_string(length, 4, delta=0.1, seed=11)
    valid_count = (7 * unique) // 10
    pool = sample_valid_patterns(source, z, m=ell, count=valid_count, seed=1)
    pool += sample_random_patterns(source, m=ell, count=unique - valid_count, seed=2)
    stream = sample_zipf_workload(pool, requests, s=zipf_s, seed=7)
    return source, pool, stream


def run_stream(service: QueryService, requests) -> list:
    return [service.query(pattern) for pattern in requests]


@pytest.fixture(scope="module")
def serve_workload():
    source, pool, stream = make_workload(
        DEFAULT_LENGTH, DEFAULT_UNIQUE, DEFAULT_REQUESTS, DEFAULT_Z, DEFAULT_ELL,
        DEFAULT_ZIPF_S,
    )
    index = build_index(source, DEFAULT_Z, kind=DEFAULT_KIND, ell=DEFAULT_ELL)
    return index, pool, stream


@pytest.mark.parametrize("cache", ("off", "on"))
def test_query_service_throughput(benchmark, serve_workload, cache):
    index, pool, stream = serve_workload

    def payload():
        service = QueryService(
            index, cache_size=2 * len(pool), cache_enabled=(cache == "on")
        )
        run_stream(service, stream)
        return service

    service = benchmark(payload)

    stats = service.stats()
    benchmark.extra_info["cache"] = cache
    benchmark.extra_info["requests"] = len(stream)
    benchmark.extra_info["unique_patterns"] = len(pool)
    benchmark.extra_info["hit_rate"] = round(stats["hit_rate"], 4)
    benchmark.extra_info["queries_per_second"] = round(
        len(stream) / benchmark.stats["mean"], 1
    )
    if cache == "on":
        assert stats["hit_rate"] > 0.0


def main(argv=None) -> int:
    """Standalone cache-off-vs-on comparison (prints qps and hit rate)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--unique", type=int, default=DEFAULT_UNIQUE)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--z", type=float, default=DEFAULT_Z)
    parser.add_argument("--ell", type=int, default=DEFAULT_ELL)
    parser.add_argument("--zipf-s", type=float, default=DEFAULT_ZIPF_S)
    parser.add_argument("--kind", default=DEFAULT_KIND)
    parser.add_argument("--json", metavar="FILE",
                        help="write the measured rows (with run metadata) to FILE")
    arguments = parser.parse_args(argv)

    source, pool, stream = make_workload(
        arguments.length, arguments.unique, arguments.requests,
        arguments.z, arguments.ell, arguments.zipf_s,
    )
    index = build_index(source, arguments.z, kind=arguments.kind, ell=arguments.ell)
    print(
        f"workload: n={len(source)}, z={arguments.z:g}, ell={arguments.ell}, "
        f"kind={arguments.kind}, {len(stream)} requests over {len(pool)} "
        f"patterns (zipf s={arguments.zipf_s:g})"
    )

    rows = []
    answers = {}
    for cache in ("off", "on"):
        service = QueryService(
            index, cache_size=2 * len(pool), cache_enabled=(cache == "on")
        )
        run_stream(service, stream[:5])  # warm library caches outside the timer
        service.reset_stats()
        service.clear_cache()
        started = time.perf_counter()
        results = run_stream(service, stream)
        elapsed = time.perf_counter() - started
        stats = service.stats()
        answers[cache] = [result.positions for result in results]
        qps = len(stream) / elapsed
        rows.append(
            {"cache": cache, "elapsed_seconds": elapsed, "queries_per_second": qps,
             "hit_rate": stats["hit_rate"], "evictions": stats["evictions"]}
        )
        print(
            f"cache {cache}: {qps:,.0f} queries/s, "
            f"hit rate {stats['hit_rate']:.1%}, {stats['evictions']} evictions"
        )

    if answers["on"] != answers["off"]:
        print("MISMATCH between cached and uncached results")
        return 1
    off, on = rows[0], rows[1]
    print(f"speedup with cache: {on['queries_per_second'] / off['queries_per_second']:.1f}x")
    if on["hit_rate"] <= 0.0:
        print("FAIL: the skewed mix produced no cache hits")
        return 1
    if on["queries_per_second"] <= off["queries_per_second"]:
        print("FAIL: the cached run was not faster on the skewed mix")
        return 1
    if arguments.json:
        from repro.bench.metadata import run_metadata

        payload = {"metadata": run_metadata(), "rows": rows,
                   "workload": {"n": len(source), "requests": len(stream),
                                "unique_patterns": len(pool),
                                "zipf_s": arguments.zipf_s}}
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {arguments.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
