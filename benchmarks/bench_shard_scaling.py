"""Shard-scaling benchmark — parallel sharded builds vs the monolithic build.

Not a paper figure: this benchmark tracks the construction-path scaling of
the sharded index architecture and the binary index store.  The timed
payloads over the synthetic sparse-uncertainty dataset (default n = 20,000)
are

* ``single``  — the monolithic (single-shard) build;
* ``sharded`` — the same index kind built over N overlapping shards with W
  worker processes;
* ``load``    — reopening the saved sharded index from the binary store
  (which must be far cheaper than any rebuild).

The standalone runner verifies that sharded, monolithic and store-reloaded
indexes answer an identical pattern batch identically, and — on machines
with at least 4 cores — that the parallel build beats the single-shard build
wall-clock.  Run under pytest-benchmark (``pytest benchmarks/
--benchmark-only``) or standalone with tiny parameters for CI smoke tests::

    python benchmarks/bench_shard_scaling.py --length 4000 --shards 4 --workers 2
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

import pytest

from repro.datasets.patterns import sample_random_patterns, sample_valid_patterns
from repro.datasets.synthetic import sparse_uncertainty_string
from repro.indexes import build_index
from repro.io.store import load_index, save_index

DEFAULT_LENGTH = 20_000
DEFAULT_SHARDS = 8
DEFAULT_WORKERS = 4
DEFAULT_Z = 16.0
DEFAULT_ELL = 32
DEFAULT_KIND = "MWSA"
DEFAULT_PATTERNS = 200


def make_workload(length: int, pattern_count: int, z: float, ell: int):
    """The synthetic source and a mixed valid/random pattern batch."""
    source = sparse_uncertainty_string(length, 4, delta=0.1, seed=11)
    valid_count = (7 * pattern_count) // 10
    patterns = sample_valid_patterns(source, z, m=ell, count=valid_count, seed=1)
    patterns += sample_random_patterns(
        source, m=ell, count=pattern_count - valid_count, seed=2
    )
    return source, patterns


@pytest.fixture(scope="module")
def shard_workload():
    return make_workload(4_000, 50, DEFAULT_Z, DEFAULT_ELL)


@pytest.mark.parametrize("shards,workers", [(1, 1), (4, 1), (4, 2)])
def test_shard_build_scaling(benchmark, shard_workload, shards, workers):
    source, patterns = shard_workload

    index = benchmark(
        build_index,
        source,
        DEFAULT_Z,
        kind=DEFAULT_KIND,
        ell=DEFAULT_ELL,
        shards=shards,
        workers=workers,
    )

    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["workers"] = workers
    assert len(index.match_many(patterns)) == len(patterns)


def main(argv=None) -> int:
    """Standalone single-vs-sharded-vs-store comparison (prints wall-clocks)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--z", type=float, default=DEFAULT_Z)
    parser.add_argument("--ell", type=int, default=DEFAULT_ELL)
    parser.add_argument("--kind", default=DEFAULT_KIND)
    parser.add_argument("--patterns", type=int, default=DEFAULT_PATTERNS)
    arguments = parser.parse_args(argv)

    source, patterns = make_workload(
        arguments.length, arguments.patterns, arguments.z, arguments.ell
    )
    print(
        f"workload: n={len(source)}, z={arguments.z:g}, ell={arguments.ell}, "
        f"kind={arguments.kind}, {len(patterns)} patterns, "
        f"{os.cpu_count()} cpus"
    )

    started = time.perf_counter()
    single = build_index(
        source, arguments.z, kind=arguments.kind, ell=arguments.ell, shards=1
    )
    single_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sharded = build_index(
        source,
        arguments.z,
        kind=arguments.kind,
        ell=arguments.ell,
        shards=arguments.shards,
        workers=arguments.workers,
    )
    sharded_seconds = time.perf_counter() - started

    expected = single.match_many(patterns)
    if sharded.match_many(patterns) != expected:
        print("MISMATCH between single-shard and sharded results")
        return 1
    print(
        f"single shard: {single_seconds:.2f}s; "
        f"{arguments.shards} shards x {arguments.workers} workers: "
        f"{sharded_seconds:.2f}s (speedup {single_seconds / sharded_seconds:.2f}x)"
    )

    handle, path = tempfile.mkstemp(suffix=".idx")
    os.close(handle)
    try:
        started = time.perf_counter()
        save_index(path, sharded)
        save_seconds = time.perf_counter() - started
        started = time.perf_counter()
        loaded = load_index(path)
        load_seconds = time.perf_counter() - started
        if loaded.match_many(patterns) != expected:
            print("MISMATCH between stored and rebuilt results")
            return 1
        print(
            f"store: {os.path.getsize(path):,} bytes, save {save_seconds:.2f}s, "
            f"load {load_seconds:.2f}s "
            f"({sharded_seconds / load_seconds:.0f}x faster than rebuilding)"
        )
    finally:
        os.unlink(path)

    cpus = os.cpu_count() or 1
    if arguments.workers >= 4 and cpus >= 4 and sharded_seconds >= single_seconds:
        print("FAIL: parallel sharded build did not beat the single-shard build")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
