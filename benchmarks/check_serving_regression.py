"""Regression gate: validate the HTTP-serving snapshot (and a fresh run).

``BENCH_http_serving.json`` (committed at the repository root) records the
serving-layer benchmark: micro-batching rows at each concurrency level, the
multi-worker scaling rows with their memory accounting, and the gates the
run was held to.  This checker enforces two absolute bars on whichever
report it is pointed at:

* **micro-batching** — at the highest measured concurrency, batching-on
  must beat batching-off by ``--min-batching-speedup`` (default 2x, the
  PR-6 bar);
* **multi-worker scaling** — the top worker level must beat one worker by
  ``--min-scaling`` (default 1.7x) **when the run measured enough cores to
  enforce it**; a snapshot that recorded a skip (``scaling_enforced:
  false``, e.g. a single-core runner) passes with the skip reported, so CI
  stays honest on small machines without losing the gate on real ones;
* **shared memory** — every worker's copy-on-write share of the store
  mappings must stay under ``--max-private-fraction`` (default 15% of the
  store size): the mapped index must be shared, not copied per worker;
* **verify overhead** — the checksum pass on the store load path must add
  at most ``--max-verify-overhead`` (default 10%) to a full reload; like
  the batching bar this is waived at smoke scale (a tiny store's reload is
  dominated by fixed costs) and on snapshots that predate the section.

With ``--fresh`` a second report is compared against the snapshot on a
relative band: fresh throughputs must reach ``--min-ratio`` (default 0.25)
of the snapshot's, catching collapses without tripping on machine noise.

Usage::

    python benchmarks/check_serving_regression.py --snapshot BENCH_http_serving.json
    python benchmarks/bench_http_serving.py --smoke --json fresh.json
    python benchmarks/check_serving_regression.py \
        --snapshot BENCH_http_serving.json --fresh fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_MIN_BATCHING_SPEEDUP = 2.0
DEFAULT_MIN_SCALING = 1.7
DEFAULT_MAX_PRIVATE_FRACTION = 0.15
DEFAULT_MIN_RATIO = 0.25
DEFAULT_MAX_VERIFY_OVERHEAD = 0.10


def batching_speedup(report: dict) -> tuple[int, float] | None:
    """(top concurrency, on/off speedup) from the micro-batching rows."""
    rows = report.get("rows") or []
    if not rows:
        return None
    top = max(row["concurrency"] for row in rows)
    off = [r for r in rows if r["concurrency"] == top and not r["batching"]]
    on = [r for r in rows if r["concurrency"] == top and r["batching"]]
    if not off or not on:
        return None
    return top, on[0]["requests_per_second"] / off[0]["requests_per_second"]


def check_report(report: dict, *, min_batching: float, min_scaling: float,
                 max_private: float, label: str,
                 max_verify_overhead: float = DEFAULT_MAX_VERIFY_OVERHEAD,
                 ) -> list[str]:
    """Absolute-bar violations of one report."""
    violations = []
    for row in (report.get("rows") or []) + (report.get("cluster_rows") or []):
        if row.get("errors"):
            violations.append(
                f"{label}: {row['errors']} non-200 responses in a measured row"
            )
    smoke = bool((report.get("workload") or {}).get("smoke"))
    pair = batching_speedup(report)
    if pair is None:
        violations.append(f"{label}: no micro-batching rows to check")
    elif smoke:
        # The bench itself waives the absolute bar at smoke scale (noise-
        # dominated); the relative band against the snapshot still applies.
        print(
            f"note ({label}): smoke run — batching bar not enforced "
            f"(recorded {pair[1]:.2f}x at concurrency {pair[0]})"
        )
    else:
        top, speedup = pair
        if speedup < min_batching:
            violations.append(
                f"{label}: micro-batching speedup {speedup:.2f}x at "
                f"concurrency {top} is below the {min_batching:g}x bar"
            )
    durability = report.get("durability")
    if durability is None:
        # Snapshots written before the durability section existed stay valid.
        print(f"note ({label}): no durability section — verify gate skipped")
    elif smoke:
        # At smoke scale the store is tiny and fixed per-array costs dwarf
        # the streaming CRC pass, so the ratio is not meaningful as a gate.
        print(
            f"note ({label}): smoke run — verify-overhead gate not enforced "
            f"(recorded {durability['verify_overhead_ratio']:+.1%} over a "
            f"{durability['store_bytes']:,}-byte store)"
        )
    elif durability["verify_overhead_ratio"] > max_verify_overhead:
        violations.append(
            f"{label}: checksum verification adds "
            f"{durability['verify_overhead_ratio']:.1%} to the store reload, "
            f"above the {max_verify_overhead:.0%} ceiling"
        )
    gates = report.get("cluster_gates") or {}
    if not gates:
        violations.append(f"{label}: no multi-worker gates recorded")
        return violations
    if gates.get("scaling_enforced"):
        if gates.get("speedup", 0.0) < min_scaling:
            violations.append(
                f"{label}: multi-worker scaling {gates.get('speedup')}x on "
                f"{gates.get('cores')} cores is below the {min_scaling:g}x bar"
            )
    else:
        print(
            f"note ({label}): scaling bar not enforced — "
            f"{gates.get('scaling_skip_reason')} "
            f"(recorded {gates.get('speedup')}x on {gates.get('cores')} core(s))"
        )
    fractions = gates.get("private_fractions") or {}
    if not fractions:
        violations.append(
            f"{label}: no per-worker store-mapping accounting recorded"
        )
    for pid, fraction in sorted(fractions.items()):
        if fraction > max_private:
            violations.append(
                f"{label}: worker pid {pid} copy-on-write share "
                f"{fraction:.1%} of the store exceeds {max_private:.0%} — "
                "the mapped index is being copied, not shared"
            )
    return violations


def compare_fresh(snapshot: dict, fresh: dict, min_ratio: float) -> list[str]:
    """Relative-band violations: fresh throughput vs the snapshot."""
    violations = []

    def throughputs(report, key, tag):
        return {
            (tag, row.get("workers"), row.get("concurrency"), row.get("batching")):
            row["requests_per_second"]
            for row in report.get(key) or []
        }

    for key, tag in (("rows", "batching"), ("cluster_rows", "cluster")):
        reference = throughputs(snapshot, key, tag)
        measured = throughputs(fresh, key, tag)
        for name, value in sorted(
            reference.items(), key=lambda item: str(item[0])
        ):
            got = measured.get(name)
            if got is None:
                continue  # a fresh smoke run may measure fewer levels
            floor = value * min_ratio
            if got < floor:
                violations.append(
                    f"{name}: fresh {got:,.0f} req/s < {floor:,.0f} "
                    f"(snapshot {value:,.0f} * tolerance {min_ratio:g})"
                )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", required=True,
                        help="committed BENCH_http_serving.json")
    parser.add_argument("--fresh", help="optional fresh --json run to compare")
    parser.add_argument("--min-batching-speedup", type=float,
                        default=DEFAULT_MIN_BATCHING_SPEEDUP,
                        help=f"micro-batching bar (default "
                        f"{DEFAULT_MIN_BATCHING_SPEEDUP:g}x)")
    parser.add_argument("--min-scaling", type=float, default=DEFAULT_MIN_SCALING,
                        help=f"multi-worker bar when enforced (default "
                        f"{DEFAULT_MIN_SCALING:g}x)")
    parser.add_argument("--max-private-fraction", type=float,
                        default=DEFAULT_MAX_PRIVATE_FRACTION,
                        help=f"per-worker copy-on-write ceiling (default "
                        f"{DEFAULT_MAX_PRIVATE_FRACTION:g})")
    parser.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
                        help=f"fresh throughput must reach this fraction of "
                        f"the snapshot (default {DEFAULT_MIN_RATIO:g})")
    parser.add_argument("--max-verify-overhead", type=float,
                        default=DEFAULT_MAX_VERIFY_OVERHEAD,
                        help=f"checksum-verification reload overhead ceiling "
                        f"(default {DEFAULT_MAX_VERIFY_OVERHEAD:g})")
    arguments = parser.parse_args(argv)
    with open(arguments.snapshot, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    violations = check_report(
        snapshot,
        min_batching=arguments.min_batching_speedup,
        min_scaling=arguments.min_scaling,
        max_private=arguments.max_private_fraction,
        label="snapshot",
        max_verify_overhead=arguments.max_verify_overhead,
    )
    if arguments.fresh:
        with open(arguments.fresh, "r", encoding="utf-8") as handle:
            fresh = json.load(handle)
        violations += check_report(
            fresh,
            min_batching=arguments.min_batching_speedup,
            min_scaling=arguments.min_scaling,
            max_private=arguments.max_private_fraction,
            label="fresh",
            max_verify_overhead=arguments.max_verify_overhead,
        )
        violations += compare_fresh(snapshot, fresh, arguments.min_ratio)
    if violations:
        print(f"REGRESSION: {len(violations)} serving gate(s) violated")
        for message in violations:
            print(f"  {message}")
        return 1
    pair = batching_speedup(snapshot)
    print(
        f"OK: serving gates hold (micro-batching "
        f"{pair[1]:.2f}x >= {arguments.min_batching_speedup:g}x at "
        f"concurrency {pair[0]}; scaling "
        f"{(snapshot.get('cluster_gates') or {}).get('speedup')}x "
        f"{'enforced' if (snapshot.get('cluster_gates') or {}).get('scaling_enforced') else 'recorded'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
