"""Fig. 13 — construction space including MWST-SE (vs ℓ and z, EFM/HUMAN)."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one

KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-SE")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 32))
def test_fig13_se_construction_space_vs_ell(benchmark, bench_scale, efm_source, kind, ell):
    z = bench_scale.default_z("EFM")

    index = benchmark.pedantic(
        build_one, args=(kind, efm_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


@pytest.mark.parametrize("z", (4, 16))
def test_fig13_se_construction_space_vs_z(benchmark, bench_scale, efm_source, z):
    ell = bench_scale.default_ell

    index = benchmark.pedantic(
        build_one, args=("MWST-SE", efm_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


@pytest.mark.parametrize("ell", (8, 16, 32))
def test_fig13_se_needs_less_construction_space(bench_scale, efm_source, ell):
    """The headline of Section 7.3: MWST-SE builds in (much) less space."""
    z = bench_scale.default_z("EFM")
    explicit = build_one("MWSA", efm_source, z, ell)
    space_efficient = build_one("MWST-SE", efm_source, z, ell)
    assert (
        space_efficient.stats.construction_space_bytes
        < explicit.stats.construction_space_bytes
    )
