"""HTTP serving throughput — micro-batching on vs off under concurrency.

Not a paper figure: this benchmark tracks the asyncio serving layer
(:mod:`repro.service.server`).  Closed-loop clients drive ``POST /query``
over real localhost sockets with a Zipf-skewed pattern stream (the shape of
production traffic), at several concurrency levels, in two configurations:

* ``batching off`` — every request is answered individually (the baseline);
* ``batching on``  — concurrent requests coalesce into one ``query_many``
  execution per micro-batch window, so singleton HTTP requests get the
  vectorized batch path and in-batch deduplication.

The result cache is disabled in both configurations: the comparison
isolates what *micro-batching* buys, not what the LRU cache buys (that is
``bench_query_service.py``).  The standalone runner reports throughput and
p50/p99 latency per row, asserts that micro-batching wins by at least
``--min-speedup`` (default 2x) at the highest concurrency level, and
finishes with a graceful-shutdown drain check: requests parked in an open
batch window when ``shutdown()`` is called must all be answered, none
dropped or errored.

Run standalone, or at smoke scale for CI (skips the speedup floor — tiny
runs are noise-dominated)::

    python benchmarks/bench_http_serving.py
    python benchmarks/bench_http_serving.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from collections import deque
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

import pytest

from repro.datasets.patterns import (
    sample_random_patterns,
    sample_valid_patterns,
    sample_zipf_workload,
)
from repro.datasets.synthetic import sparse_uncertainty_string
from repro.indexes import build_index
from repro.service import QueryService
from repro.service.client import AsyncHttpClient
from repro.service.metrics import LATENCY_BUCKETS, Histogram
from repro.service.server import HttpServer

DEFAULT_LENGTH = 16_000
DEFAULT_UNIQUE = 100
DEFAULT_REQUESTS = 800
DEFAULT_Z = 8.0
DEFAULT_ELL = 16
DEFAULT_ZIPF_S = 1.2
DEFAULT_KIND = "MWSA"
DEFAULT_CONCURRENCY = (8, 32)
DEFAULT_WINDOW_MS = 2.0
# Sized to the top concurrency level: a full batch flushes immediately
# instead of waiting out the window remainder.
DEFAULT_MAX_BATCH = 32
DEFAULT_MIN_SPEEDUP = 2.0
DEFAULT_WORKER_LEVELS = (1, 2)
DEFAULT_MIN_SCALING = 1.7
#: Per-extra-worker *private* bytes in store-file mappings, as a fraction of
#: the store size.  A worker that truly serves from the shared map keeps its
#: private share near zero; copying the arrays would put it near 1.0.
DEFAULT_MAX_PRIVATE_FRACTION = 0.15


def make_workload(length: int, unique: int, requests: int, z: float, ell: int,
                  zipf_s: float):
    """The synthetic source and a Zipf-skewed request stream over a mixed pool."""
    source = sparse_uncertainty_string(length, 4, delta=0.1, seed=11)
    valid_count = (7 * unique) // 10
    pool = sample_valid_patterns(source, z, m=ell, count=valid_count, seed=1)
    pool += sample_random_patterns(source, m=ell, count=unique - valid_count, seed=2)
    stream = sample_zipf_workload(pool, requests, s=zipf_s, seed=7)
    return source, pool, stream


async def closed_loop(index, stream, concurrency: int, *, batching: bool,
                      window: float, max_batch: int) -> dict:
    """One timed run: ``concurrency`` clients drain the stream over HTTP."""
    service = QueryService(index, cache_enabled=False)
    server = HttpServer(
        service,
        batch_window=window,
        max_batch=max_batch,
        batching=batching,
        queue_limit=max(256, 4 * concurrency),
        request_timeout=60.0,
    )
    host, port = await server.start("127.0.0.1", 0)
    pending = deque(stream)
    latencies = Histogram(LATENCY_BUCKETS)
    errors = 0

    async def client_loop() -> None:
        nonlocal errors
        client = await AsyncHttpClient.connect(host, port)
        while True:
            try:
                pattern = pending.popleft()
            except IndexError:
                break
            started = time.perf_counter()
            response = await client.request("POST", "/query", {"pattern": pattern})
            latencies.observe(time.perf_counter() - started)
            if response.status != 200:
                errors += 1
        await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(client_loop() for _ in range(concurrency)))
    elapsed = time.perf_counter() - started
    batch_stats = server.server_stats()["batching"]
    await server.shutdown()
    return {
        "batching": batching,
        "concurrency": concurrency,
        "requests": len(stream),
        "errors": errors,
        "elapsed_seconds": elapsed,
        "requests_per_second": len(stream) / elapsed,
        "p50_ms": 1e3 * latencies.quantile(0.5),
        "p99_ms": 1e3 * latencies.quantile(0.99),
        "mean_batch_size": round(batch_stats["mean_batch_size"], 2),
        "largest_batch": batch_stats["largest_batch"],
    }


async def drain_check(index, concurrency: int) -> dict:
    """Graceful shutdown: requests parked in an open window are all answered."""
    service = QueryService(index, cache_enabled=False)
    server = HttpServer(service, batch_window=30.0, max_batch=10_000)
    host, port = await server.start("127.0.0.1", 0)
    pattern = sample_valid_patterns(
        index.source, index.z, m=index.minimum_pattern_length, count=1, seed=3
    )[0]

    async def one_request() -> int:
        client = await AsyncHttpClient.connect(host, port)
        response = await client.request("POST", "/query", {"pattern": pattern})
        await client.close()
        return response.status

    tasks = [asyncio.create_task(one_request()) for _ in range(concurrency)]
    while server.server_stats()["inflight"] < concurrency:
        await asyncio.sleep(0.001)  # every request parked in the window
    report = await server.shutdown(drain=True)
    statuses = await asyncio.gather(*tasks)
    return {
        "inflight_at_shutdown": concurrency,
        "drained": report["drained"],
        "drain_expired": report["drain_expired"],
        "answered_ok": sum(1 for status in statuses if status == 200),
        "dropped_or_errored": sum(1 for status in statuses if status != 200),
    }


# -- multi-worker scaling over one shared memory-mapped store -----------------


def measured_cores() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def store_mapping_bytes(pid: int, store_path: str) -> dict | None:
    """Resident-memory accounting of one process's store-file mappings.

    Walks ``/proc/<pid>/smaps`` and sums the entries whose backing path lies
    under ``store_path``.  This is the direct measurement behind the sharing
    claim: a worker serving from the shared map keeps the index pages
    file-backed and *clean* — every resident page lives once in the page
    cache, whichever worker faulted it first (the kernel labels a page
    ``Private_Clean`` until a second process touches it, so clean bytes are
    shared either way).  ``private_dirty`` is the copy signal: a worker that
    wrote (copy-on-write) into the map holds genuinely duplicated pages.
    """
    prefix = str(Path(store_path).resolve())
    totals = {"rss": 0, "private_dirty": 0, "clean": 0}
    in_store = False
    try:
        with open(f"/proc/{pid}/smaps", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                head = line.split(" ", 1)[0]
                if "-" in head and ":" not in head:
                    # a mapping header line: "addr-addr perms offset dev inode path"
                    fields = line.rstrip("\n").split(maxsplit=5)
                    in_store = len(fields) == 6 and fields[5].startswith(prefix)
                elif in_store:
                    name, _, rest = line.partition(":")
                    if name == "Rss":
                        totals["rss"] += int(rest.split()[0]) * 1024
                    elif name == "Private_Dirty":
                        totals["private_dirty"] += int(rest.split()[0]) * 1024
                    elif name in ("Private_Clean", "Shared_Clean"):
                        totals["clean"] += int(rest.split()[0]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return totals


async def drive_stream(host: str, port: int, stream, concurrency: int) -> dict:
    """Drain a request stream against an already-running server."""
    pending = deque(stream)
    latencies = Histogram(LATENCY_BUCKETS)
    errors = 0

    async def client_loop() -> None:
        nonlocal errors
        client = await AsyncHttpClient.connect(host, port)
        while True:
            try:
                pattern = pending.popleft()
            except IndexError:
                break
            started = time.perf_counter()
            response = await client.request("POST", "/query", {"pattern": pattern})
            latencies.observe(time.perf_counter() - started)
            if response.status != 200:
                errors += 1
        await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(client_loop() for _ in range(concurrency)))
    elapsed = time.perf_counter() - started
    return {
        "requests": len(stream),
        "errors": errors,
        "elapsed_seconds": elapsed,
        "requests_per_second": len(stream) / elapsed,
        "p50_ms": 1e3 * latencies.quantile(0.5),
        "p99_ms": 1e3 * latencies.quantile(0.99),
    }


def cluster_row(store_path: str, workers: int, stream, concurrency: int, *,
                window_ms: float, max_batch: int) -> dict:
    """One serve-http subprocess at ``--workers N``: throughput + memory."""
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve-http",
         "--store", store_path, "--workers", str(workers), "--port", "0",
         "--no-cache", "--batch-window-ms", str(window_ms),
         "--max-batch", str(max_batch), "--request-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        if not line.startswith("serving on http://"):
            raise RuntimeError(
                f"serve-http never came up: {proc.stderr.read()[-2000:]}"
            )
        address = line.split("http://", 1)[1]
        host, port_text = address.rsplit(":", 1)
        row = asyncio.run(drive_stream(host, int(port_text), stream, concurrency))
        row["workers"] = workers

        async def snapshot() -> dict:
            client = await AsyncHttpClient.connect(host, int(port_text))
            response = await client.request("GET", "/stats")
            await client.close()
            return response.json()

        stats = asyncio.run(snapshot())
        if workers > 1:
            pids = [int(pid) for pid in stats["supervisor"]["pids"].values()]
            row["store_bytes"] = stats["supervisor"]["store_bytes"]
            row["worker_memory"] = {
                str(number): snap.get("memory", {})
                for number, snap in stats.get("workers", {}).items()
            }
        else:
            pids = [proc.pid]
            row["store_bytes"] = sum(
                p.stat().st_size for p in
                ([Path(store_path)] if Path(store_path).is_file()
                 else Path(store_path).iterdir())
            )
        row["store_mappings"] = {
            str(pid): store_mapping_bytes(pid, store_path) for pid in pids
        }
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        if code != 0:
            raise RuntimeError(
                f"serve-http exited {code}: {proc.stderr.read()[-2000:]}"
            )
        return row
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def multi_worker_section(arguments, index, stream) -> tuple[list, dict] | None:
    """Scaling rows at each worker level plus the scaling/memory gates."""
    if not hasattr(os, "fork"):
        print("multi-worker: skipped (no os.fork on this platform)")
        return None
    from repro.io.store import save_index

    levels = sorted(set(arguments.workers_levels))
    concurrency = max(arguments.concurrency)
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as temp_dir:
        store_path = str(Path(temp_dir) / "index.store")
        save_index(store_path, index)
        # Flush writeback first: pages of a just-written file sit dirty in
        # the page cache, and a mapping of a dirty page is accounted as
        # Private_Dirty in smaps — which would masquerade as copy-on-write.
        os.sync()
        for workers in levels:
            row = cluster_row(
                store_path, workers, stream, concurrency,
                window_ms=arguments.batch_window_ms,
                max_batch=arguments.max_batch,
            )
            rows.append(row)
            print(
                f"workers {workers}: {row['requests_per_second']:>8,.0f} req/s, "
                f"p50 {row['p50_ms']:.2f} ms, p99 {row['p99_ms']:.2f} ms, "
                f"errors {row['errors']}"
            )

    cores = measured_cores()
    single = next(r for r in rows if r["workers"] == min(levels))
    top = next(r for r in rows if r["workers"] == max(levels))
    speedup = top["requests_per_second"] / single["requests_per_second"]
    enforced = cores >= max(levels) and not arguments.smoke
    gates = {
        "cores": cores,
        "speedup": round(speedup, 3),
        "min_scaling": arguments.min_scaling,
        "scaling_enforced": enforced,
        "scaling_skip_reason": None if enforced else (
            "smoke run" if arguments.smoke
            else f"only {cores} core(s) measured; {max(levels)} workers "
            "cannot run in parallel"
        ),
        "max_private_fraction": DEFAULT_MAX_PRIVATE_FRACTION,
        "private_fractions": {},
    }
    print(
        f"multi-worker scaling {min(levels)}->{max(levels)}: {speedup:.2f}x "
        f"({'enforced' if enforced else 'recorded, not enforced: ' + str(gates['scaling_skip_reason'])})"
    )
    # The memory gate holds on any core count: every worker must really map
    # the store (resident pages in the file mappings) and must not have
    # copy-on-write'd into it — dirty private pages are the only bytes that
    # physically duplicate the index per worker.
    store_bytes = max(1, top["store_bytes"])
    for pid, mapping in (top.get("store_mappings") or {}).items():
        if mapping is None:
            continue
        fraction = mapping["private_dirty"] / store_bytes
        gates["private_fractions"][pid] = round(fraction, 4)
        gates.setdefault("mapped_pids", []).append(pid)
        print(
            f"  worker pid {pid}: store mappings rss={mapping['rss']:,} B, "
            f"clean={mapping['clean']:,} B, "
            f"private_dirty={mapping['private_dirty']:,} B "
            f"({100 * fraction:.1f}% of the {store_bytes:,} B store)"
        )
        if mapping["rss"] == 0:
            print(f"  WARNING: pid {pid} has no resident store pages")
    return rows, gates


def durability_section(index, repeats: int = 5) -> dict:
    """The checksum tax on the load path: reload with verify off vs on.

    Saves the benchmark index to a throwaway store and times full RAM
    reloads with array verification disabled and enabled (best of
    ``repeats``, interleaved so cache state is comparable).  The overhead
    ratio feeds the regression gate in ``check_serving_regression.py``.
    """
    from repro.io.store import load_index, save_index

    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "durability.idx")
        save_index(path, index)
        size = os.path.getsize(path)
        best = {False: float("inf"), True: float("inf")}
        for verify in (False, True):  # warm the page cache and code paths
            load_index(path, mmap=False, verify=verify)
        for _ in range(repeats):
            for verify in (False, True):
                started = time.perf_counter()
                load_index(path, mmap=False, verify=verify)
                best[verify] = min(best[verify], time.perf_counter() - started)
    off, on = best[False], best[True]
    return {
        "store_bytes": size,
        "reload_seconds_verify_off": off,
        "reload_seconds_verify_on": on,
        "verify_overhead_ratio": (on - off) / off if off > 0 else 0.0,
    }


@pytest.fixture(scope="module")
def http_workload():
    source, pool, stream = make_workload(
        DEFAULT_LENGTH, DEFAULT_UNIQUE, 400, DEFAULT_Z, DEFAULT_ELL,
        DEFAULT_ZIPF_S,
    )
    index = build_index(source, DEFAULT_Z, kind=DEFAULT_KIND, ell=DEFAULT_ELL)
    return index, stream


@pytest.mark.parametrize("batching", (False, True))
def test_http_serving_throughput(benchmark, http_workload, batching):
    index, stream = http_workload

    def payload():
        return asyncio.run(
            closed_loop(index, stream, 8, batching=batching,
                        window=DEFAULT_WINDOW_MS / 1e3, max_batch=DEFAULT_MAX_BATCH)
        )

    row = benchmark.pedantic(payload, rounds=1, iterations=1)
    assert row["errors"] == 0
    if batching:
        assert row["largest_batch"] > 1
    benchmark.extra_info.update(
        {key: row[key] for key in
         ("batching", "requests_per_second", "p50_ms", "p99_ms",
          "mean_batch_size", "largest_batch")}
    )


def main(argv=None) -> int:
    """Standalone batching-off-vs-on comparison over real sockets."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--unique", type=int, default=DEFAULT_UNIQUE)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--z", type=float, default=DEFAULT_Z)
    parser.add_argument("--ell", type=int, default=DEFAULT_ELL)
    parser.add_argument("--zipf-s", type=float, default=DEFAULT_ZIPF_S)
    parser.add_argument("--kind", default=DEFAULT_KIND)
    parser.add_argument("--concurrency", type=int, nargs="+",
                        default=list(DEFAULT_CONCURRENCY))
    parser.add_argument("--batch-window-ms", type=float, default=DEFAULT_WINDOW_MS)
    parser.add_argument("--max-batch", type=int, default=DEFAULT_MAX_BATCH)
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="required batching-on/off speedup at the highest "
                        "concurrency level")
    parser.add_argument("--workers-levels", type=int, nargs="+",
                        default=list(DEFAULT_WORKER_LEVELS),
                        help="serve-http --workers levels for the scaling rows")
    parser.add_argument("--min-scaling", type=float, default=DEFAULT_MIN_SCALING,
                        help="required multi-worker throughput speedup (only "
                        "enforced when enough cores are measured)")
    parser.add_argument("--no-cluster", action="store_true",
                        help="skip the multi-worker subprocess rows")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: skips the speedup floor (noise-"
                        "dominated at this scale), keeps every correctness check")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measured rows (with run metadata) to FILE")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        arguments.length = min(arguments.length, 1_200)
        arguments.requests = min(arguments.requests, 300)
        arguments.concurrency = [8]

    source, pool, stream = make_workload(
        arguments.length, arguments.unique, arguments.requests,
        arguments.z, arguments.ell, arguments.zipf_s,
    )
    index = build_index(source, arguments.z, kind=arguments.kind, ell=arguments.ell)
    print(
        f"workload: n={len(source)}, z={arguments.z:g}, ell={arguments.ell}, "
        f"kind={arguments.kind}, {len(stream)} requests over {len(pool)} "
        f"patterns (zipf s={arguments.zipf_s:g}), cache disabled"
    )

    rows = []
    for concurrency in arguments.concurrency:
        for batching in (False, True):
            row = asyncio.run(
                closed_loop(
                    index, stream, concurrency, batching=batching,
                    window=arguments.batch_window_ms / 1e3,
                    max_batch=arguments.max_batch,
                )
            )
            rows.append(row)
            mode = "on " if batching else "off"
            print(
                f"concurrency {concurrency:>3}, batching {mode}: "
                f"{row['requests_per_second']:>8,.0f} req/s, "
                f"p50 {row['p50_ms']:.2f} ms, p99 {row['p99_ms']:.2f} ms, "
                f"mean batch {row['mean_batch_size']}, "
                f"largest {row['largest_batch']}"
            )
            if row["errors"]:
                print(f"FAIL: {row['errors']} non-200 responses")
                return 1

    top = max(arguments.concurrency)
    off = next(r for r in rows
               if r["concurrency"] == top and not r["batching"])
    on = next(r for r in rows if r["concurrency"] == top and r["batching"])
    speedup = on["requests_per_second"] / off["requests_per_second"]
    print(f"micro-batching speedup at concurrency {top}: {speedup:.1f}x")
    if not arguments.smoke and speedup < arguments.min_speedup:
        print(
            f"FAIL: micro-batching must be at least {arguments.min_speedup:g}x "
            f"the per-request baseline at concurrency {top}"
        )
        return 1

    drain = asyncio.run(drain_check(index, max(8, top)))
    print(
        f"graceful shutdown: {drain['answered_ok']}/{drain['inflight_at_shutdown']} "
        f"in-flight requests answered, {drain['dropped_or_errored']} dropped"
    )
    if drain["dropped_or_errored"] or drain["drain_expired"]:
        print("FAIL: graceful shutdown dropped or errored in-flight requests")
        return 1

    durability = durability_section(index)
    print(
        f"durability: reload verify-off "
        f"{durability['reload_seconds_verify_off'] * 1e3:.1f} ms, verify-on "
        f"{durability['reload_seconds_verify_on'] * 1e3:.1f} ms "
        f"({durability['verify_overhead_ratio']:+.1%} overhead over a "
        f"{durability['store_bytes']:,}-byte store)"
    )

    cluster_rows: list = []
    cluster_gates: dict = {}
    if not arguments.no_cluster:
        section = multi_worker_section(arguments, index, stream)
        if section is not None:
            cluster_rows, cluster_gates = section
            if any(row["errors"] for row in cluster_rows):
                print("FAIL: multi-worker rows saw non-200 responses")
                return 1
            if (cluster_gates["scaling_enforced"]
                    and cluster_gates["speedup"] < arguments.min_scaling):
                print(
                    f"FAIL: {max(arguments.workers_levels)} workers must be at "
                    f"least {arguments.min_scaling:g}x one worker on "
                    f"{cluster_gates['cores']} cores"
                )
                return 1
            over = {
                pid: fraction
                for pid, fraction in cluster_gates["private_fractions"].items()
                if fraction > DEFAULT_MAX_PRIVATE_FRACTION
            }
            if over:
                print(
                    f"FAIL: worker copy-on-write share of the store mappings "
                    f"exceeds {DEFAULT_MAX_PRIVATE_FRACTION:.0%}: {over} — the "
                    "index is being copied, not shared"
                )
                return 1

    if arguments.json:
        from repro.bench.metadata import run_metadata

        payload = {"metadata": run_metadata(), "rows": rows, "drain": drain,
                   "durability": durability,
                   "cluster_rows": cluster_rows, "cluster_gates": cluster_gates,
                   "workload": {"n": len(source), "requests": len(stream),
                                "unique_patterns": len(pool),
                                "zipf_s": arguments.zipf_s,
                                "batch_window_ms": arguments.batch_window_ms,
                                "max_batch": arguments.max_batch,
                                "smoke": bool(arguments.smoke)}}
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {arguments.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
