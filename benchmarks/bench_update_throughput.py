"""Update-throughput benchmark — incremental repair vs full rebuild.

Not a paper figure: this benchmark tracks the point-update path introduced
with mutable weighted strings.  For a synthetic sparse-uncertainty source
(default n = 20,000) it measures, per single-position update:

* ``rebuild``   — mutate the string, rebuild the index from scratch, requery;
* ``monolith``  — the monolithic minimizer index's localized leaf
  re-derivation (``apply_updates``), requery;
* ``sharded``   — the sharded index's dirty-shard rebuild, requery.

Both update paths must answer the post-update pattern batch bit-identically
to the from-scratch rebuild, and the *monolithic localized* path must beat
it by at least the factor asserted below (the acceptance bar is 5x for
update+requery at n = 20,000; CI runs a tiny smoke configuration that only
checks agreement).  The bar had been recalibrated down to 3x when the
array-backed construction fast path made the rebuild denominator ~8x
faster; checkpointed z-estimation replay plus the batched leaf-merge tie
resolution brought the localized path back over 5x against that faster
baseline.
Run under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) or
standalone::

    python benchmarks/bench_update_throughput.py --length 20000 --updates 5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

import numpy as np
import pytest

from repro.datasets.patterns import sample_random_patterns, sample_valid_patterns
from repro.datasets.synthetic import sparse_uncertainty_string
from repro.indexes import build_index

DEFAULT_LENGTH = 20_000
DEFAULT_Z = 4.0
DEFAULT_ELL = 8
DEFAULT_KIND = "MWSA"
DEFAULT_SHARDS = 12
DEFAULT_PATTERNS = 200
DEFAULT_UPDATES = 5
#: The acceptance bar: monolithic localized update+requery vs full
#: rebuild+requery.  Restored to 5x (from the 3x post-array recalibration)
#: by checkpointed z-estimation replay and the batched leaf-merge tie
#: resolution.
REQUIRED_SPEEDUP = 5.0


def make_workload(length: int, pattern_count: int, z: float, ell: int):
    source = sparse_uncertainty_string(length, 4, delta=0.1, seed=23)
    valid = (7 * pattern_count) // 10
    patterns = sample_valid_patterns(source, z, m=ell, count=valid, seed=3)
    patterns += sample_random_patterns(
        source, m=ell, count=pattern_count - valid, seed=4
    )
    return source, patterns


def random_update(source, rng):
    """One random single-position re-weighting."""
    position = int(rng.integers(0, len(source)))
    row = np.asarray(source.matrix[position]).copy()
    row[int(rng.integers(source.sigma))] += 0.6
    return position, row / row.sum()


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points (tiny workload)                                #
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def update_workload():
    source, patterns = make_workload(4_000, 50, DEFAULT_Z, DEFAULT_ELL)
    return source, patterns


@pytest.mark.parametrize("path", ["monolith", "sharded"])
def test_update_requery(benchmark, update_workload, path):
    source, patterns = update_workload
    if path == "monolith":
        index = build_index(source, DEFAULT_Z, kind=DEFAULT_KIND, ell=DEFAULT_ELL)
    else:
        index = build_index(
            source, DEFAULT_Z, kind=DEFAULT_KIND, ell=DEFAULT_ELL,
            shards=8, max_pattern_len=2 * DEFAULT_ELL,
        )
    rng = np.random.default_rng(7)

    def update_and_requery():
        position, row = random_update(source, rng)
        index.apply_updates([(position, row)])
        return index.match_many(patterns)

    benchmark(update_and_requery)
    benchmark.extra_info["path"] = path


# --------------------------------------------------------------------------- #
# standalone runner                                                            #
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--z", type=float, default=DEFAULT_Z)
    parser.add_argument("--ell", type=int, default=DEFAULT_ELL)
    parser.add_argument("--kind", default=DEFAULT_KIND)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--patterns", type=int, default=DEFAULT_PATTERNS)
    parser.add_argument("--updates", type=int, default=DEFAULT_UPDATES)
    parser.add_argument(
        "--require-speedup", type=float, default=None,
        help=f"fail unless the monolithic localized path beats the rebuild "
        f"by this factor "
        f"(default: {REQUIRED_SPEEDUP:g} at n >= {DEFAULT_LENGTH}, off below)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    arguments = parser.parse_args(argv)

    source, patterns = make_workload(
        arguments.length, arguments.patterns, arguments.z, arguments.ell
    )
    required = arguments.require_speedup
    if required is None and arguments.length >= DEFAULT_LENGTH:
        required = REQUIRED_SPEEDUP
    if not arguments.json:
        print(
            f"workload: n={len(source)}, z={arguments.z:g}, ell={arguments.ell}, "
            f"kind={arguments.kind}, shards={arguments.shards}, "
            f"{len(patterns)} patterns, {os.cpu_count()} cpus"
        )

    monolith = build_index(source, arguments.z, kind=arguments.kind, ell=arguments.ell)
    sharded = build_index(
        source, arguments.z, kind=arguments.kind, ell=arguments.ell,
        shards=arguments.shards, max_pattern_len=2 * arguments.ell,
    )

    rng = np.random.default_rng(99)
    rebuild_times, monolith_times, sharded_times = [], [], []
    strategies = set()
    for _ in range(arguments.updates):
        update = [random_update(source, rng)]

        started = time.perf_counter()
        report = monolith.apply_updates(update)
        expected = monolith.match_many(patterns)
        monolith_times.append(time.perf_counter() - started)
        strategies.add(report.strategy)

        started = time.perf_counter()
        sharded.apply_updates(update)
        sharded_answers = sharded.match_many(patterns)
        sharded_times.append(time.perf_counter() - started)

        # The from-scratch baseline over the already-mutated string.
        started = time.perf_counter()
        rebuilt = build_index(
            source, arguments.z, kind=arguments.kind, ell=arguments.ell
        )
        rebuilt_answers = rebuilt.match_many(patterns)
        rebuild_times.append(time.perf_counter() - started)

        if expected != rebuilt_answers or sharded_answers != rebuilt_answers:
            print("MISMATCH: updated indexes disagree with the full rebuild")
            return 1

    rebuild = float(np.median(rebuild_times))
    monolith_median = float(np.median(monolith_times))
    sharded_median = float(np.median(sharded_times))
    report = {
        "schema": "repro.bench.update_throughput.v1",
        "length": len(source),
        "updates": arguments.updates,
        "patterns": len(patterns),
        "monolith_strategies": sorted(strategies),
        "rebuild_requery_seconds": rebuild,
        "monolith_update_requery_seconds": monolith_median,
        "sharded_update_requery_seconds": sharded_median,
        "monolith_speedup": rebuild / monolith_median,
        "sharded_speedup": rebuild / sharded_median,
    }
    if arguments.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"full rebuild + requery: {rebuild:.3f}s (median of "
            f"{arguments.updates} single-position updates)"
        )
        print(
            f"monolithic apply_updates + requery: {monolith_median:.3f}s "
            f"({report['monolith_speedup']:.1f}x, "
            f"strategies={report['monolith_strategies']})"
        )
        print(
            f"sharded dirty-shard update + requery: {sharded_median:.3f}s "
            f"({report['sharded_speedup']:.1f}x)"
        )
    if required is not None:
        # The monolithic localized path carries the bar: the sharded path's
        # dirty-shard rebuild is bounded by shard size, not by the localized
        # repair this benchmark guards.
        if report["monolith_speedup"] < required:
            print(
                f"FAIL: monolithic localized update is "
                f"{report['monolith_speedup']:.1f}x vs the full rebuild, "
                f"required {required:g}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
