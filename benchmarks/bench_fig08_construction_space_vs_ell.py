"""Fig. 8 — construction space vs ℓ (tree and array index families, EFM)."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one

KINDS = ("WST", "WSA", "MWST", "MWSA")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 32))
def test_fig08_construction_space_vs_ell(benchmark, bench_scale, efm_source, kind, ell):
    z = bench_scale.default_z("EFM")

    index = benchmark.pedantic(
        build_one, args=(kind, efm_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


def test_fig08_array_construction_needs_less_space_than_tree(bench_scale, efm_source):
    """WSA construction space is below WST's (the paper's array-vs-tree gap)."""
    z = bench_scale.default_z("EFM")
    tree = build_one("WST", efm_source, z, bench_scale.default_ell)
    array = build_one("WSA", efm_source, z, bench_scale.default_ell)
    assert array.stats.construction_space_bytes < tree.stats.construction_space_bytes
