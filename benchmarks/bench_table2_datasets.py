"""Table 2 — dataset characteristics and z-estimation construction.

The timed payload is the z-estimation construction of each dataset at its
default z; the extra info records the Table 2 columns (length, σ, Δ and the
size of the z-estimation under the space model).
"""

from __future__ import annotations

import pytest

from repro.core.estimation import build_z_estimation
from repro.datasets.registry import DATASETS
from repro.indexes.space import DEFAULT_SPACE_MODEL


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_table2_dataset_characteristics(benchmark, bench_scale, dataset):
    source = bench_scale.dataset(dataset)
    z = bench_scale.default_z(dataset)

    estimation = benchmark(build_z_estimation, source, z)

    model = DEFAULT_SPACE_MODEL
    benchmark.extra_info["length"] = len(source)
    benchmark.extra_info["sigma"] = source.sigma
    benchmark.extra_info["delta_percent"] = round(100.0 * source.delta, 2)
    benchmark.extra_info["z"] = z
    benchmark.extra_info["z_estimation_mb"] = round(
        (
            model.codes(estimation.width * estimation.length)
            + model.words(estimation.width * estimation.length)
        )
        / 1e6,
        4,
    )
    assert estimation.width == int(z)
    assert estimation.length == len(source)
