"""Construction-throughput benchmark — array-backed fast path vs reference.

Not a paper figure: this benchmark tracks the structure-of-arrays
construction pipeline (vectorised z-estimation materialisation, radix-sorted
leaf arrays, vectorised mismatch extraction).  For a synthetic
sparse-uncertainty source (default n = 20,000) it builds every index variant
through both construction paths:

* ``reference`` — the frozen per-position / per-leaf path (the pre-array
  implementation, kept selectable precisely for this comparison);
* ``vectorized`` — the array-backed fast path (the default everywhere).

Both paths must answer a shared pattern batch bit-identically (checked for
every variant, including the sharded build), and the *monolithic minimizer
family* (MWST, MWSA, MWST-G, MWSA-G) must build at least ``3x`` faster
through the fast path at the default size — the acceptance bar of the
array-backed construction work.  ``MWST-SE`` has a single (space-efficient
DFS) construction whose hot path was itself rewritten, so it is reported
new-path-only.  Peak construction memory is measured per build with
``tracemalloc`` in a separate untimed pass.  Run under pytest-benchmark
(``pytest benchmarks/ --benchmark-only``) or standalone::

    python benchmarks/bench_construction_throughput.py --length 20000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

import pytest

from repro.bench.measure import peak_rss_bytes
from repro.datasets.patterns import sample_random_patterns, sample_valid_patterns
from repro.datasets.synthetic import sparse_uncertainty_string
from repro.indexes import build_index

DEFAULT_LENGTH = 20_000
DEFAULT_Z = 8.0
DEFAULT_ELL = 16
DEFAULT_SHARDS = 8
DEFAULT_PATTERNS = 100
#: Variants with both construction paths (7 registered kinds minus MWST-SE).
TWO_PATH_KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G")
#: The kinds the acceptance bar is asserted on (aggregate build time).
MONOLITHIC_MINIMIZER_FAMILY = ("MWST", "MWSA", "MWST-G", "MWSA-G")
#: The acceptance bar: reference-path vs fast-path aggregate build time.
REQUIRED_SPEEDUP = 3.0
#: The tree variants whose construction the CSR trie core accelerates.
TREE_FAMILY = ("WST", "MWST")
#: The array/kernel-core acceptance bar: PR-5 path (object tries) vs the CSR
#: path, aggregate end-to-end build time of the tree family.
REQUIRED_TREE_SPEEDUP = 2.0
#: Every monolithic kind, for the store save/reload throughput rows.
ALL_MONOLITHIC_KINDS = (*TWO_PATH_KINDS, "MWST-SE")


def make_workload(length: int, pattern_count: int, z: float, ell: int):
    source = sparse_uncertainty_string(length, 4, delta=0.1, seed=17)
    valid = (7 * pattern_count) // 10
    patterns = sample_valid_patterns(source, z, m=ell, count=valid, seed=5)
    patterns += sample_random_patterns(
        source, m=ell, count=pattern_count - valid, seed=6
    )
    return source, patterns


def build_variant(source, z, ell, kind, method, shards=None):
    """One full construction through the chosen path."""
    options = {"method": method}
    if kind == "MWST-SE":
        options = {}  # single construction path
    if shards is not None:
        return build_index(
            source, z, kind=kind, ell=ell, shards=shards,
            max_pattern_len=2 * ell, **options,
        )
    return build_index(source, z, kind=kind, ell=ell, **options)


def traced_peak_mb(builder) -> float:
    """Peak tracemalloc bytes of one build, in MB (separate untimed pass)."""
    tracemalloc.start()
    builder()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1e6


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points (tiny workload)                                #
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def construction_workload():
    return make_workload(4_000, 30, DEFAULT_Z, DEFAULT_ELL)


@pytest.mark.parametrize("kind", ["MWSA", "MWST", "MWSA-G", "MWST-SE"])
def test_construction_fast_path(benchmark, construction_workload, kind):
    source, _ = construction_workload
    index = benchmark(
        lambda: build_variant(source, DEFAULT_Z, DEFAULT_ELL, kind, "vectorized")
    )
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["index_size_mb"] = round(
        index.stats.index_size_bytes / 1e6, 4
    )


def test_reference_and_fast_path_agree(construction_workload):
    source, patterns = construction_workload
    for kind in ("MWSA", "MWST-G"):
        old = build_variant(source, DEFAULT_Z, DEFAULT_ELL, kind, "reference")
        new = build_variant(source, DEFAULT_Z, DEFAULT_ELL, kind, "vectorized")
        assert old.match_many(patterns) == new.match_many(patterns)


# --------------------------------------------------------------------------- #
# standalone runner                                                            #
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--z", type=float, default=DEFAULT_Z)
    parser.add_argument("--ell", type=int, default=DEFAULT_ELL)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--patterns", type=int, default=DEFAULT_PATTERNS)
    parser.add_argument(
        "--skip-memory", action="store_true",
        help="skip the separate tracemalloc peak-memory pass",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None,
        help=f"fail unless the monolithic minimizer family builds this much "
        f"faster through the fast path (default: {REQUIRED_SPEEDUP:g} at "
        f"n >= {DEFAULT_LENGTH}, off below)",
    )
    parser.add_argument(
        "--require-tree-speedup", type=float, default=None,
        help=f"fail unless the tree family (WST+MWST) builds this much faster "
        f"through the CSR-trie core than through the PR-5 object-trie path "
        f"(default: {REQUIRED_TREE_SPEEDUP:g} at n >= {DEFAULT_LENGTH}, off below)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    arguments = parser.parse_args(argv)

    source, patterns = make_workload(
        arguments.length, arguments.patterns, arguments.z, arguments.ell
    )
    required = arguments.require_speedup
    if required is None and arguments.length >= DEFAULT_LENGTH:
        required = REQUIRED_SPEEDUP
    if not arguments.json:
        print(
            f"workload: n={len(source)}, z={arguments.z:g}, ell={arguments.ell}, "
            f"shards={arguments.shards}, {len(patterns)} patterns, "
            f"{os.cpu_count()} cpus"
        )

    # Warm caches (numpy kernels, dataset pages) so the first timed build is
    # not charged the process's one-off costs.
    warmup_source, _ = make_workload(min(1_000, arguments.length), 4, arguments.z, arguments.ell)
    for method in ("reference", "vectorized"):
        build_variant(warmup_source, arguments.z, arguments.ell, "MWSA", method)

    rows = []
    built: dict[str, object] = {}
    build_seconds: dict[str, float] = {}
    family_old = family_new = 0.0
    targets = [(kind, None) for kind in TWO_PATH_KINDS]
    targets.append(("MWSA", arguments.shards))  # the sharded build
    for kind, shards in targets:
        label = f"SHARDED[{kind}]x{shards}" if shards else kind
        started = time.perf_counter()
        old_index = build_variant(
            source, arguments.z, arguments.ell, kind, "reference", shards
        )
        old_seconds = time.perf_counter() - started
        started = time.perf_counter()
        new_index = build_variant(
            source, arguments.z, arguments.ell, kind, "vectorized", shards
        )
        new_seconds = time.perf_counter() - started
        if old_index.match_many(patterns) != new_index.match_many(patterns):
            print(f"MISMATCH: {label} answers differ between construction paths")
            return 1
        row = {
            "kind": label,
            "reference_seconds": old_seconds,
            "vectorized_seconds": new_seconds,
            "speedup": old_seconds / new_seconds if new_seconds > 0 else None,
        }
        if not arguments.skip_memory:
            row["reference_peak_mb"] = traced_peak_mb(
                lambda: build_variant(
                    source, arguments.z, arguments.ell, kind, "reference", shards
                )
            )
            row["vectorized_peak_mb"] = traced_peak_mb(
                lambda: build_variant(
                    source, arguments.z, arguments.ell, kind, "vectorized", shards
                )
            )
        rows.append(row)
        if shards is None:
            built[kind] = new_index
            build_seconds[kind] = new_seconds
        if kind in MONOLITHIC_MINIMIZER_FAMILY and shards is None:
            family_old += old_seconds
            family_new += new_seconds

    # MWST-SE: one construction path, reported for completeness.
    started = time.perf_counter()
    se_index = build_variant(source, arguments.z, arguments.ell, "MWST-SE", None)
    se_seconds = time.perf_counter() - started
    se_row = {"kind": "MWST-SE", "vectorized_seconds": se_seconds}
    if not arguments.skip_memory:
        se_row["vectorized_peak_mb"] = traced_peak_mb(
            lambda: build_variant(source, arguments.z, arguments.ell, "MWST-SE", None)
        )
    se_index.match_many(patterns)  # exercise the built index
    rows.append(se_row)
    built["MWST-SE"] = se_index
    build_seconds["MWST-SE"] = se_seconds

    # PR-5 path rows: the same end-to-end builds through the object-trie
    # construction that PR 5 shipped, against the CSR-trie core.  Both are
    # the vectorized pipeline — the toggle isolates exactly the trie layer,
    # which dominates the tree-variant builds.
    from repro.strings.trie import trie_implementation

    tree_rows = []
    tree_old = tree_new = 0.0
    for kind in TREE_FAMILY:
        with trie_implementation("object"):
            started = time.perf_counter()
            pr5_index = build_variant(source, arguments.z, arguments.ell, kind, "vectorized")
            pr5_seconds = time.perf_counter() - started
        csr_seconds = build_seconds[kind]
        if pr5_index.match_many(patterns) != built[kind].match_many(patterns):
            print(f"MISMATCH: {kind} answers differ between trie implementations")
            return 1
        tree_rows.append({
            "kind": kind,
            "pr5_object_trie_seconds": pr5_seconds,
            "csr_trie_seconds": csr_seconds,
            "speedup": pr5_seconds / csr_seconds if csr_seconds > 0 else None,
        })
        tree_old += pr5_seconds
        tree_new += csr_seconds
    tree_speedup = tree_old / tree_new if tree_new > 0 else None

    # Store round-trip rows: persisted CSR tries and grid levels mean a
    # reload re-derives nothing, so load time should sit far below build time.
    import tempfile

    from repro.io.store import load_index, save_index

    reload_rows = []
    with tempfile.TemporaryDirectory() as directory:
        for kind in ALL_MONOLITHIC_KINDS:
            path = os.path.join(directory, f"{kind}.idx")
            started = time.perf_counter()
            save_index(path, built[kind])
            save_seconds = time.perf_counter() - started
            started = time.perf_counter()
            loaded = load_index(path)
            load_seconds = time.perf_counter() - started
            if loaded.match_many(patterns) != built[kind].match_many(patterns):
                print(f"MISMATCH: {kind} answers differ after a store round-trip")
                return 1
            reload_rows.append({
                "kind": kind,
                "build_seconds": build_seconds[kind],
                "save_seconds": save_seconds,
                "load_seconds": load_seconds,
                "reload_speedup": (
                    build_seconds[kind] / load_seconds if load_seconds > 0 else None
                ),
            })

    family_speedup = family_old / family_new if family_new > 0 else None
    from repro.bench.metadata import run_metadata

    report = {
        "schema": "repro.bench.construction_throughput.v2",
        "metadata": run_metadata(),
        "length": len(source),
        "z": arguments.z,
        "ell": arguments.ell,
        "patterns": len(patterns),
        "rows": rows,
        "tree_rows": tree_rows,
        "reload_rows": reload_rows,
        "monolithic_minimizer_family_speedup": family_speedup,
        "tree_family_pr5_speedup": tree_speedup,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if arguments.json:
        print(json.dumps(report, indent=2))
    else:
        for row in rows:
            parts = [f"{row['kind']}:"]
            if "reference_seconds" in row:
                parts.append(f"old={row['reference_seconds']:.3f}s")
            parts.append(f"new={row['vectorized_seconds']:.3f}s")
            if row.get("speedup") is not None:
                parts.append(f"speedup={row['speedup']:.2f}x")
            if "vectorized_peak_mb" in row:
                if "reference_peak_mb" in row:
                    parts.append(
                        f"peak {row['reference_peak_mb']:.1f}->"
                        f"{row['vectorized_peak_mb']:.1f}MB"
                    )
                else:
                    parts.append(f"peak {row['vectorized_peak_mb']:.1f}MB")
            print("  ".join(parts))
        print(
            f"monolithic minimizer family (MWST/MWSA/±G) aggregate speedup: "
            f"{family_speedup:.2f}x"
        )
        for row in tree_rows:
            print(
                f"{row['kind']}: pr5-object-trie={row['pr5_object_trie_seconds']:.3f}s  "
                f"csr-trie={row['csr_trie_seconds']:.3f}s  "
                f"speedup={row['speedup']:.2f}x"
            )
        print(f"tree family (WST+MWST) aggregate speedup over PR-5: {tree_speedup:.2f}x")
        for row in reload_rows:
            print(
                f"{row['kind']}: build={row['build_seconds']:.3f}s  "
                f"save={row['save_seconds']:.3f}s  load={row['load_seconds']:.3f}s  "
                f"reload-speedup={row['reload_speedup']:.1f}x"
            )
    failed = False
    if required is not None and (family_speedup is None or family_speedup < required):
        print(
            f"FAIL: monolithic minimizer family speedup {family_speedup:.2f}x "
            f"is below the required {required:g}x"
        )
        failed = True
    required_tree = arguments.require_tree_speedup
    if required_tree is None and arguments.length >= DEFAULT_LENGTH:
        required_tree = REQUIRED_TREE_SPEEDUP
    if required_tree is not None and (tree_speedup is None or tree_speedup < required_tree):
        print(
            f"FAIL: tree family speedup over the PR-5 path {tree_speedup:.2f}x "
            f"is below the required {required_tree:g}x"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
