"""Fig. 12 — construction time vs ℓ and vs z (EFM, tree and array families)."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one

KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 32))
def test_fig12_construction_time_vs_ell(benchmark, bench_scale, efm_source, kind, ell):
    z = bench_scale.default_z("EFM")

    index = benchmark.pedantic(
        build_one, args=(kind, efm_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


@pytest.mark.parametrize("kind", ("WSA", "MWSA"))
@pytest.mark.parametrize("z", (4, 16))
def test_fig12_construction_time_vs_z(benchmark, bench_scale, efm_source, kind, z):
    ell = bench_scale.default_ell

    index = benchmark.pedantic(
        build_one, args=(kind, efm_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z
