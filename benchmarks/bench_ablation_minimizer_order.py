"""Ablation — minimizer order (Karp–Rabin-style random vs lexicographic).

The paper computes minimizers with Karp–Rabin fingerprints; Section 8
discusses why a lexicographic order can degenerate (on ``abcdef...`` every
position is selected).  This ablation builds the same MWSA index under both
orders and records the sampled-leaf counts and index sizes, and also varies
the k-mer length around the Lemma 1 default.
"""

from __future__ import annotations

import pytest

from repro.indexes import MinimizerWSA
from repro.sampling.minimizers import MinimizerScheme, default_k


@pytest.mark.parametrize("order", ("random", "lexicographic"))
def test_ablation_minimizer_order(benchmark, bench_scale, efm_source, order):
    z = bench_scale.default_z("EFM")
    ell = bench_scale.default_ell
    scheme = MinimizerScheme(ell, efm_source.sigma, order=order)

    index = benchmark.pedantic(
        MinimizerWSA.build,
        args=(efm_source, z, ell),
        kwargs={"scheme": scheme},
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["order"] = order
    benchmark.extra_info["forward_leaves"] = index.stats.counters["forward_leaves"]
    benchmark.extra_info["index_size_mb"] = round(index.stats.index_size_bytes / 1e6, 4)


@pytest.mark.parametrize("k_offset", (-1, 0, 2))
def test_ablation_kmer_length(benchmark, bench_scale, efm_source, k_offset):
    z = bench_scale.default_z("EFM")
    ell = bench_scale.default_ell
    k = max(2, min(ell, default_k(ell, efm_source.sigma) + k_offset))
    scheme = MinimizerScheme(ell, efm_source.sigma, k=k, order="random")

    index = benchmark.pedantic(
        MinimizerWSA.build,
        args=(efm_source, z, ell),
        kwargs={"scheme": scheme},
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["k"] = k
    benchmark.extra_info["forward_leaves"] = index.stats.counters["forward_leaves"]
    benchmark.extra_info["index_size_mb"] = round(index.stats.index_size_bytes / 1e6, 4)


def test_ablation_orders_answer_queries_identically(bench_scale, efm_source):
    """The sampling order changes the index size, never the query answers."""
    from repro.datasets.patterns import sample_valid_patterns

    z = bench_scale.default_z("EFM")
    ell = bench_scale.default_ell
    random_order = MinimizerWSA.build(
        efm_source, z, ell, scheme=MinimizerScheme(ell, efm_source.sigma, order="random")
    )
    lexicographic = MinimizerWSA.build(
        efm_source, z, ell,
        scheme=MinimizerScheme(ell, efm_source.sigma, order="lexicographic"),
    )
    for pattern in sample_valid_patterns(efm_source, z, ell, 5, seed=9):
        assert random_order.locate(pattern) == lexicographic.locate(pattern)
