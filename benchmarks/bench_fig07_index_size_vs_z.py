"""Fig. 7 — index size vs z for the tree- and array-based index families."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one

KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("z", (4, 16))
def test_fig07_index_size_vs_z(benchmark, bench_scale, genomic_sources, kind, z):
    source = genomic_sources["SARS"]
    ell = bench_scale.default_ell

    index = benchmark.pedantic(
        build_one, args=(kind, source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


def test_fig07_index_size_grows_with_z(bench_scale, genomic_sources):
    """Index sizes grow with z for both the baseline and the minimizer index."""
    source = genomic_sources["SARS"]
    ell = bench_scale.default_ell
    small_z = build_one("MWSA", source, 4, ell)
    large_z = build_one("MWSA", source, 16, ell)
    assert large_z.stats.index_size_bytes >= small_z.stats.index_size_bytes
