"""Batch query throughput — vectorised ``match_many`` vs the per-pattern loop.

Not a paper figure: this benchmark tracks the serving-path speedup of the
batch query engine.  The workload is a 1,000-pattern batch (70 % patterns
sampled from the z-estimation, 30 % uniformly random) over the synthetic
sparse-uncertainty dataset; the timed payloads are

* ``per-pattern`` — the old query loop, ``[index.locate(p) for p in batch]``;
* ``batch``       — one ``index.match_many(batch)`` call.

Run under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) or
standalone with tiny parameters for CI smoke tests::

    python benchmarks/bench_batch_query_throughput.py --length 600 --patterns 100
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

import pytest

from repro.core.estimation import build_z_estimation
from repro.datasets.patterns import sample_random_patterns, sample_valid_patterns
from repro.datasets.synthetic import sparse_uncertainty_string
from repro.indexes import build_index

KINDS = ("MWSA", "MWST", "MWSA-G", "MWST-G")
DEFAULT_LENGTH = 4000
DEFAULT_PATTERNS = 1000
DEFAULT_Z = 8.0
DEFAULT_ELL = 16


def make_workload(length: int, pattern_count: int, z: float, ell: int):
    """The synthetic source, a shared estimation and the mixed pattern batch."""
    source = sparse_uncertainty_string(length, 4, delta=0.1, seed=11)
    estimation = build_z_estimation(source, z)
    valid_count = (7 * pattern_count) // 10
    patterns = sample_valid_patterns(
        source, z, m=ell, count=valid_count, estimation=estimation, seed=1
    )
    patterns += sample_random_patterns(
        source, m=ell, count=pattern_count - valid_count, seed=2
    )
    return source, estimation, patterns


def run_per_pattern(index, patterns):
    return [index.locate(pattern) for pattern in patterns]


def run_batch(index, patterns):
    return index.match_many(patterns)


@pytest.fixture(scope="module")
def batch_workload():
    return make_workload(DEFAULT_LENGTH, DEFAULT_PATTERNS, DEFAULT_Z, DEFAULT_ELL)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("mode", ("per-pattern", "batch"))
def test_batch_query_throughput(benchmark, batch_workload, kind, mode):
    source, estimation, patterns = batch_workload
    index = build_index(
        source, DEFAULT_Z, kind=kind, ell=DEFAULT_ELL, estimation=estimation
    )
    payload = run_per_pattern if mode == "per-pattern" else run_batch

    results = benchmark(payload, index, patterns)

    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["patterns"] = len(patterns)
    benchmark.extra_info["patterns_per_second"] = round(
        len(patterns) / benchmark.stats["mean"], 1
    )
    assert len(results) == len(patterns)


def main(argv=None) -> int:
    """Standalone old-vs-new comparison (prints patterns/sec and speedups)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH)
    parser.add_argument("--patterns", type=int, default=DEFAULT_PATTERNS)
    parser.add_argument("--z", type=float, default=DEFAULT_Z)
    parser.add_argument("--ell", type=int, default=DEFAULT_ELL)
    parser.add_argument("--kinds", nargs="*", default=list(KINDS))
    arguments = parser.parse_args(argv)

    source, estimation, patterns = make_workload(
        arguments.length, arguments.patterns, arguments.z, arguments.ell
    )
    print(
        f"workload: n={len(source)}, z={arguments.z:g}, ell={arguments.ell}, "
        f"{len(patterns)} patterns"
    )
    for kind in arguments.kinds:
        index = build_index(
            source, arguments.z, kind=kind, ell=arguments.ell, estimation=estimation
        )
        index.match_many(patterns[:5])  # warm the caches outside the timers
        started = time.perf_counter()
        per_pattern = run_per_pattern(index, patterns)
        mid = time.perf_counter()
        batch = run_batch(index, patterns)
        finished = time.perf_counter()
        if per_pattern != batch:
            print(f"{kind}: MISMATCH between per-pattern and batch results")
            return 1
        old_rate = len(patterns) / (mid - started)
        new_rate = len(patterns) / (finished - mid)
        print(
            f"{kind}: per-pattern {old_rate:,.0f} pat/s, "
            f"batch {new_rate:,.0f} pat/s, speedup {new_rate / old_rate:.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
