"""Fig. 10 — average query time vs ℓ (patterns of length m = ℓ).

The timed payload is the query workload (patterns sampled from the
z-estimation, as in the paper); construction happens once per parameter
combination outside the timer.
"""

from __future__ import annotations

import pytest

from _helpers import build_one
from repro.datasets.patterns import sample_valid_patterns

KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G")


def _run_workload(index, patterns):
    total = 0
    for pattern in patterns:
        total += len(index.locate(pattern))
    return total


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 32))
def test_fig10_query_time_vs_ell(benchmark, bench_scale, genomic_sources, kind, ell):
    source = genomic_sources["SARS"]
    z = bench_scale.default_z("SARS")
    index = build_one(kind, source, z, ell)
    patterns = sample_valid_patterns(
        source, z, m=ell, count=bench_scale.pattern_count, seed=0
    )

    matches = benchmark(_run_workload, index, patterns)

    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z
    benchmark.extra_info["patterns"] = len(patterns)
    benchmark.extra_info["total_matches"] = matches
    assert matches >= len(patterns)  # every sampled pattern has a valid occurrence
