"""Regression gate: compare a fresh construction-benchmark run to the snapshot.

``BENCH_construction.json`` (committed at the repository root) records the
construction- and reload-throughput ratios of the array/kernel core at the
reference workload (n = 20,000).  This checker compares a fresh ``--json``
run of ``bench_construction_throughput.py`` against that snapshot and fails
when a metric fell out of band.  Absolute seconds are never compared — the
fresh run may use a smaller ``--length`` (CI does) and a different machine —
only two kinds of derived metrics:

* **speedup ratios** (fast path vs reference, CSR tries vs the PR-5 object
  path, the family aggregates): these shrink with the workload, so the band
  is relative — ``fresh >= snapshot * min_ratio`` with ``min_ratio``
  defaulting to 0.25, generous enough for a 5x smaller CI workload and noisy
  shared runners, tight enough to catch a path silently falling back to a
  quadratic implementation;
* **reload speedups** (build seconds / load seconds): the build side grows
  with n while the load side barely moves, so these are gated on an
  *absolute* floor instead — a reload that re-derived its tries or grid
  would land near 1x, far below the default floor of 2x.

Usage::

    python benchmarks/bench_construction_throughput.py --length 4000 \
        --skip-memory --json > fresh.json
    python benchmarks/check_construction_regression.py \
        --snapshot BENCH_construction.json --fresh fresh.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Top-level ratio metrics compared snapshot-vs-fresh.
AGGREGATE_METRICS = (
    "monolithic_minimizer_family_speedup",
    "tree_family_pr5_speedup",
)
DEFAULT_MIN_RATIO = 0.25
DEFAULT_MIN_RELOAD_SPEEDUP = 2.0


def _normalize_kind(kind: str) -> str:
    """Strip the shard count: ``SHARDED[MWSA]x8`` and ``x4`` are one series."""
    return re.sub(r"x\d+$", "", kind)


def _row_ratios(report: dict, key: str, metric: str) -> dict[str, float]:
    return {
        _normalize_kind(row["kind"]): row[metric]
        for row in report.get(key, ())
        if row.get(metric) is not None
    }


def collect_speedups(report: dict) -> dict[str, float]:
    """The workload-relative speedup metrics of one report."""
    ratios = {}
    for metric in AGGREGATE_METRICS:
        value = report.get(metric)
        if value is not None:
            ratios[metric] = float(value)
    for kind, value in _row_ratios(report, "rows", "speedup").items():
        ratios[f"rows/{kind}/speedup"] = float(value)
    for kind, value in _row_ratios(report, "tree_rows", "speedup").items():
        ratios[f"tree_rows/{kind}/speedup"] = float(value)
    return ratios


def collect_reload_speedups(report: dict) -> dict[str, float]:
    """The reload speedups (gated on an absolute floor)."""
    return {
        f"reload_rows/{kind}/reload_speedup": float(value)
        for kind, value in _row_ratios(report, "reload_rows", "reload_speedup").items()
    }


def compare(
    snapshot: dict,
    fresh: dict,
    min_ratio: float,
    min_reload_speedup: float,
) -> list[str]:
    """Violation messages; empty when the fresh run is within the band."""
    violations = []
    fresh_speedups = collect_speedups(fresh)
    for name, reference in sorted(collect_speedups(snapshot).items()):
        value = fresh_speedups.get(name)
        if value is None:
            violations.append(
                f"{name}: missing from the fresh run (snapshot {reference:.2f}x)"
            )
            continue
        floor = reference * min_ratio
        if value < floor:
            violations.append(
                f"{name}: fresh {value:.2f}x < {floor:.2f}x "
                f"(snapshot {reference:.2f}x * tolerance {min_ratio:g})"
            )
    fresh_reloads = collect_reload_speedups(fresh)
    for name in sorted(collect_reload_speedups(snapshot)):
        value = fresh_reloads.get(name)
        if value is None:
            violations.append(f"{name}: missing from the fresh run")
        elif value < min_reload_speedup:
            violations.append(
                f"{name}: fresh {value:.2f}x reload speedup is below the "
                f"{min_reload_speedup:g}x floor (reload may be re-deriving "
                f"its tries or grid)"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", required=True, help="committed BENCH_construction.json")
    parser.add_argument("--fresh", required=True, help="fresh --json run to check")
    parser.add_argument(
        "--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
        help=f"fresh speedups must reach this fraction of the snapshot "
        f"(default {DEFAULT_MIN_RATIO:g})",
    )
    parser.add_argument(
        "--min-reload-speedup", type=float, default=DEFAULT_MIN_RELOAD_SPEEDUP,
        help=f"absolute floor on every reload speedup "
        f"(default {DEFAULT_MIN_RELOAD_SPEEDUP:g}x)",
    )
    arguments = parser.parse_args(argv)
    with open(arguments.snapshot, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    with open(arguments.fresh, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    violations = compare(
        snapshot, fresh, arguments.min_ratio, arguments.min_reload_speedup
    )
    compared = len(collect_speedups(snapshot)) + len(collect_reload_speedups(snapshot))
    if violations:
        print(f"REGRESSION: {len(violations)} of {compared} metrics out of band")
        for message in violations:
            print(f"  {message}")
        return 1
    print(
        f"OK: {compared} metrics within the tolerance band "
        f"(min ratio {arguments.min_ratio:g}, reload floor "
        f"{arguments.min_reload_speedup:g}x; snapshot n={snapshot.get('length')}, "
        f"fresh n={fresh.get('length')})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
