"""Regression gate: compare a fresh update-benchmark run to the snapshot.

``BENCH_update.json`` (committed at the repository root) records the
update-vs-rebuild speedups of ``bench_update_throughput.py`` at the
reference workload (n = 20,000).  This checker enforces two things:

* **the absolute acceptance bar on the snapshot itself** — the committed
  reference run must show the monolithic localized path beating
  rebuild+requery by at least 5x.  Re-snapshotting after a slowdown cannot
  silently lower the bar;
* **a relative band on the fresh run** — the fresh speedups (monolithic and
  sharded) must reach a fraction of the snapshot's.  Absolute seconds are
  never compared: the fresh run may use a much smaller ``--length`` (CI
  does) and a different machine, and update speedups shrink with the
  workload because the rebuild denominator grows with n while the localized
  repair barely moves.  The default tolerance of 0.25 passes the CI smoke
  workload (n = 3,000) with ~40% headroom while still catching the
  localized path silently degrading into a full rebuild, which would land
  near 1x.

Usage::

    python benchmarks/bench_update_throughput.py --length 3000 --shards 4 \
        --updates 2 --patterns 60 --json > fresh.json
    python benchmarks/check_update_regression.py \
        --snapshot BENCH_update.json --fresh fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Speedup metrics compared snapshot-vs-fresh (relative band).
SPEEDUP_METRICS = ("monolith_speedup", "sharded_speedup")
DEFAULT_MIN_RATIO = 0.25
#: Absolute floor the committed snapshot must meet on the reference workload.
DEFAULT_SNAPSHOT_FLOOR = 5.0


def compare(
    snapshot: dict,
    fresh: dict,
    min_ratio: float,
    snapshot_floor: float,
) -> list[str]:
    """Violation messages; empty when the fresh run is within the band."""
    violations = []
    reference_monolith = snapshot.get("monolith_speedup")
    if reference_monolith is None:
        violations.append("snapshot has no monolith_speedup")
    elif reference_monolith < snapshot_floor:
        violations.append(
            f"snapshot monolith_speedup {reference_monolith:.2f}x is below "
            f"the {snapshot_floor:g}x acceptance bar (re-snapshotting cannot "
            f"lower the bar)"
        )
    for name in SPEEDUP_METRICS:
        reference = snapshot.get(name)
        if reference is None:
            violations.append(f"{name}: missing from the snapshot")
            continue
        value = fresh.get(name)
        if value is None:
            violations.append(
                f"{name}: missing from the fresh run (snapshot {reference:.2f}x)"
            )
            continue
        floor = float(reference) * min_ratio
        if float(value) < floor:
            violations.append(
                f"{name}: fresh {float(value):.2f}x < {floor:.2f}x "
                f"(snapshot {float(reference):.2f}x * tolerance {min_ratio:g})"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", required=True, help="committed BENCH_update.json")
    parser.add_argument("--fresh", required=True, help="fresh --json run to check")
    parser.add_argument(
        "--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
        help=f"fresh speedups must reach this fraction of the snapshot "
        f"(default {DEFAULT_MIN_RATIO:g})",
    )
    parser.add_argument(
        "--snapshot-floor", type=float, default=DEFAULT_SNAPSHOT_FLOOR,
        help=f"absolute monolithic-speedup floor the snapshot must meet "
        f"(default {DEFAULT_SNAPSHOT_FLOOR:g}x)",
    )
    arguments = parser.parse_args(argv)
    with open(arguments.snapshot, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    with open(arguments.fresh, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    violations = compare(
        snapshot, fresh, arguments.min_ratio, arguments.snapshot_floor
    )
    if violations:
        print(f"REGRESSION: {len(violations)} update metrics out of band")
        for message in violations:
            print(f"  {message}")
        return 1
    print(
        f"OK: update speedups within the tolerance band "
        f"(min ratio {arguments.min_ratio:g}, snapshot floor "
        f"{arguments.snapshot_floor:g}x; snapshot n={snapshot.get('length')} "
        f"at {snapshot.get('monolith_speedup'):.2f}x, "
        f"fresh n={fresh.get('length')} "
        f"at {fresh.get('monolith_speedup'):.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
