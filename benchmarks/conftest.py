"""Shared fixtures of the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper at the
``tiny`` scale (see ``repro.bench.harness.SCALES``), so that
``pytest benchmarks/ --benchmark-only`` exercises every experiment in a few
minutes.  The full-size sweeps are produced by ``python -m repro.bench``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src"
if str(SOURCE_ROOT) not in sys.path:  # allow running without installation
    sys.path.insert(0, str(SOURCE_ROOT))

from repro.bench.harness import SCALES  # noqa: E402
from repro.bench.metadata import run_metadata  # noqa: E402
from repro.core.estimation import build_z_estimation  # noqa: E402
from repro.datasets.registry import load_dataset  # noqa: E402


#: Metadata fields stable across runs on one machine/toolchain.  Only these
#: belong in ``machine_info`` — pytest-benchmark warns whenever a compared
#: run's machine_info differs, so per-run fields (timestamp, git sha) would
#: turn every ``--benchmark-compare`` into a spurious mismatch warning.
_STABLE_MACHINE_KEYS = (
    "python_version",
    "python_implementation",
    "numpy_version",
    "platform",
    "machine",
    "cpu_count",
)


def pytest_benchmark_update_machine_info(config, machine_info):
    """Add the stable toolchain facts to every saved ``machine_info``."""
    metadata = run_metadata()
    machine_info.update({key: metadata[key] for key in _STABLE_MACHINE_KEYS})


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp the full run metadata (git sha, timestamp, versions) on the JSON.

    Keeps ``BENCH_*.json`` trajectories attributable across machines and
    commits without polluting the comparison-sensitive ``machine_info``.
    """
    output_json["run_metadata"] = run_metadata()


@pytest.fixture(scope="session")
def bench_scale():
    """The sweep values used by every benchmark."""
    return SCALES["tiny"]


@pytest.fixture(scope="session")
def genomic_sources(bench_scale):
    """The three genomic datasets at benchmark scale."""
    return {
        name: load_dataset(name, bench_scale.dataset_lengths[name])
        for name in ("SARS", "EFM", "HUMAN")
    }


@pytest.fixture(scope="session")
def efm_source(genomic_sources):
    """The EFM-like dataset (the paper's main construction benchmark input)."""
    return genomic_sources["EFM"]


@pytest.fixture(scope="session")
def rssi_source(bench_scale):
    """The RSSI-like dataset at benchmark scale."""
    return load_dataset("RSSI", bench_scale.dataset_lengths["RSSI"])


@pytest.fixture(scope="session")
def efm_estimation(efm_source, bench_scale):
    """A shared z-estimation of the EFM dataset at its default z."""
    return build_z_estimation(efm_source, bench_scale.default_z("EFM"))
