"""Helpers shared by the per-figure benchmark files."""

from __future__ import annotations

from repro.indexes import build_index


def build_one(kind: str, source, z, ell):
    """Build one index kind from scratch (including its z-estimation, if any).

    Used as the timed payload of the construction benchmarks so that every
    method is charged its full construction pipeline, as in the paper.
    """
    return build_index(source, z, kind=kind, ell=ell)


def attach_stats(benchmark, index) -> None:
    """Record the space-model statistics of a built index on the benchmark."""
    stats = index.stats
    benchmark.extra_info["index_size_mb"] = round(stats.index_size_bytes / 1e6, 4)
    benchmark.extra_info["construction_space_mb"] = round(
        stats.construction_space_bytes / 1e6, 4
    )
    for key, value in stats.counters.items():
        if isinstance(value, (int, float)):
            benchmark.extra_info[key] = value
