"""Fig. 16 — construction time on RSSI data: MWST-SE vs WSA (ℓ, z, σ, n)."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one
from repro.datasets.rssi import rssi_family

KINDS = ("WSA", "MWST-SE")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 16))
def test_fig16_rssi_construction_time_vs_ell(benchmark, bench_scale, rssi_source, kind, ell):
    z = bench_scale.default_z("RSSI")

    index = benchmark.pedantic(
        build_one, args=(kind, rssi_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z})


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("z", (2, 8))
def test_fig16_rssi_construction_time_vs_z(benchmark, bench_scale, rssi_source, kind, z):
    ell = bench_scale.default_ell

    index = benchmark.pedantic(
        build_one, args=(kind, rssi_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z})


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("sigma", (16, 64))
def test_fig16_rssi_construction_time_vs_sigma(
    benchmark, bench_scale, rssi_source, kind, sigma
):
    z = bench_scale.default_z("RSSI")
    ell = bench_scale.default_ell
    variant = rssi_family(rssi_source, sigma=sigma)

    index = benchmark.pedantic(
        build_one, args=(kind, variant, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z, "sigma": sigma})


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("length_factor", (1, 2))
def test_fig16_rssi_construction_time_vs_n(
    benchmark, bench_scale, rssi_source, kind, length_factor
):
    z = bench_scale.default_z("RSSI")
    ell = bench_scale.default_ell
    variant = rssi_family(rssi_source, sigma=32, length_factor=length_factor)

    index = benchmark.pedantic(
        build_one, args=(kind, variant, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z, "sigma": 32, "n": len(variant)})
