"""Fig. 6 — index size vs ℓ (WST/MWST/MWST-G and WSA/MWSA/MWSA-G).

The timed payload is the full construction of each index; the figure's
actual metric (index size in MB under the space model) is attached as extra
info.  The expected shape — minimizer indexes far smaller than the
baselines, shrinking as ℓ grows — is asserted directly.
"""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one

KINDS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 32))
def test_fig06_index_size_vs_ell(benchmark, bench_scale, genomic_sources, kind, ell):
    source = genomic_sources["EFM"]
    z = bench_scale.default_z("EFM")

    index = benchmark.pedantic(
        build_one, args=(kind, source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


@pytest.mark.parametrize("ell", (8, 16, 32))
def test_fig06_minimizer_index_smaller_than_baseline(bench_scale, genomic_sources, ell):
    """The paper's headline: MWSA is (much) smaller than WSA, and shrinks with ℓ."""
    source = genomic_sources["SARS"]
    z = bench_scale.default_z("SARS")
    baseline = build_one("WSA", source, z, ell)
    minimizer = build_one("MWSA", source, z, ell)
    assert minimizer.stats.index_size_bytes < baseline.stats.index_size_bytes
