"""Fig. 14 — construction space on RSSI data: MWST-SE vs WSA (ℓ, z, σ, n)."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one
from repro.datasets.rssi import rssi_family

KINDS = ("WSA", "MWST-SE")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("ell", (8, 16))
def test_fig14_rssi_construction_space_vs_ell(benchmark, bench_scale, rssi_source, kind, ell):
    z = bench_scale.default_z("RSSI")

    index = benchmark.pedantic(
        build_one, args=(kind, rssi_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z, "sigma": rssi_source.sigma})


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("sigma", (16, 64))
def test_fig14_rssi_construction_space_vs_sigma(benchmark, bench_scale, rssi_source, kind, sigma):
    z = bench_scale.default_z("RSSI")
    ell = bench_scale.default_ell
    variant = rssi_family(rssi_source, sigma=sigma)

    index = benchmark.pedantic(
        build_one, args=(kind, variant, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z, "sigma": sigma, "n": len(variant)})


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("length_factor", (1, 2))
def test_fig14_rssi_construction_space_vs_n(
    benchmark, bench_scale, rssi_source, kind, length_factor
):
    z = bench_scale.default_z("RSSI")
    ell = bench_scale.default_ell
    variant = rssi_family(rssi_source, sigma=32, length_factor=length_factor)

    index = benchmark.pedantic(
        build_one, args=(kind, variant, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info.update({"ell": ell, "z": z, "sigma": 32, "n": len(variant)})


def test_fig14_se_beats_wsa_on_rssi(bench_scale, rssi_source):
    """On the sensor data, MWST-SE needs less construction space than WSA."""
    z = bench_scale.default_z("RSSI")
    ell = bench_scale.default_ell
    wsa = build_one("WSA", rssi_source, z, ell)
    se = build_one("MWST-SE", rssi_source, z, ell)
    assert se.stats.construction_space_bytes < wsa.stats.construction_space_bytes
