"""Fig. 9 — construction space vs z (tree and array index families, EFM)."""

from __future__ import annotations

import pytest

from _helpers import attach_stats, build_one

KINDS = ("WST", "WSA", "MWST", "MWSA")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("z", (4, 16))
def test_fig09_construction_space_vs_z(benchmark, bench_scale, efm_source, kind, z):
    ell = bench_scale.default_ell

    index = benchmark.pedantic(
        build_one, args=(kind, efm_source, z, ell), rounds=1, iterations=1
    )

    attach_stats(benchmark, index)
    benchmark.extra_info["ell"] = ell
    benchmark.extra_info["z"] = z


def test_fig09_construction_space_grows_with_z(bench_scale, efm_source):
    """Construction space grows with z for the baseline (Θ(nz) estimation)."""
    ell = bench_scale.default_ell
    small_z = build_one("WSA", efm_source, 4, ell)
    large_z = build_one("WSA", efm_source, 16, ell)
    assert large_z.stats.construction_space_bytes > small_z.stats.construction_space_bytes
